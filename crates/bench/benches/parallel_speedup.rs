//! Scaling sweep for the parallel hot paths: seal+append of a 1k-tx
//! block (parallel leaf hashing, MAC verification, index updates) and
//! a layered range scan (grouped block fetch + parallel materialize),
//! each at worker caps 1, 2, 4, and 8.
//!
//! Besides the criterion output, the run writes `BENCH_parallel.json`
//! at the repository root with mean ns/iter per (workload, threads)
//! and the host's CPU count, so speedups are interpretable: on a
//! single-core host every cap collapses to sequential execution and
//! the honest speedup is ~1.0×.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{Ledger, Strategy};
use sebdb_bench::datagen::{range_bed, Placement, TestBed};
use sebdb_bench::workload::run_q4;
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::hmac::hmac_sha256;
use sebdb_crypto::sig::KeyId;
use sebdb_crypto::MacKeypair;
use sebdb_storage::BlockStore;
use sebdb_types::{Codec, Transaction, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_CAPS: [usize; 4] = [1, 2, 4, 8];
const BLOCK_TXS: usize = 1024;

fn bench_txs() -> Vec<Transaction> {
    (0..BLOCK_TXS)
        .map(|i| {
            let mut t = Transaction::new(
                i as u64,
                KeyId([0xA1; 8]),
                "donate",
                vec![
                    Value::str(format!("donor-{i}")),
                    Value::str("education"),
                    Value::decimal(i as i64 + 1),
                ],
            );
            t.tid = i as u64 + 1;
            t.sig = vec![0u8; 33];
            t
        })
        .collect()
}

/// One seal+append round: fresh in-memory ledger, an installed MAC
/// verifier (real HMAC work per transaction), one 1k-tx block.
fn seal_append_once(txs: &[Transaction]) -> u64 {
    let ledger = Ledger::new(
        Arc::new(BlockStore::in_memory()),
        MacKeypair::from_key([0xBE; 32]),
    )
    .unwrap();
    ledger.set_tx_verifier(Some(Box::new(|tx: &Transaction| {
        // Placeholder sigs carry no tag; charge the real MAC cost and
        // accept, so the parallel verify path is exercised end to end.
        let tag = hmac_sha256(&[0xBE; 32], &tx.to_bytes());
        tag.as_bytes()[0] as usize != usize::MAX
    })));
    let block = ledger
        .append_ordered(OrderedBlock {
            seq: 0,
            timestamp_ms: 1000,
            txs: txs.to_vec(),
        })
        .unwrap();
    block.header.height
}

fn layered_scan_once(bed: &TestBed) -> usize {
    run_q4(bed, Strategy::Layered).len()
}

/// Mean ns/iter over `iters` runs after one warm-up call.
fn measure(mut f: impl FnMut(), iters: u32) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / u128::from(iters)) as u64
}

fn parallel_speedup(c: &mut Criterion) {
    let txs = bench_txs();
    let bed = range_bed(32, 64, 256, Placement::Uniform, 42);
    let mut json_rows: Vec<(String, usize, u64)> = Vec::new();

    let mut group = c.benchmark_group("parallel_speedup");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for threads in THREAD_CAPS {
        sebdb_parallel::set_max_threads(threads);
        group.bench_function(BenchmarkId::new("seal_append_1k", threads), |b| {
            b.iter(|| seal_append_once(&txs))
        });
        group.bench_function(BenchmarkId::new("layered_range_scan", threads), |b| {
            b.iter(|| layered_scan_once(&bed))
        });
        json_rows.push((
            "seal_append_1k".into(),
            threads,
            measure(
                || {
                    let _ = seal_append_once(&txs);
                },
                20,
            ),
        ));
        json_rows.push((
            "layered_range_scan".into(),
            threads,
            measure(
                || {
                    let _ = layered_scan_once(&bed);
                },
                20,
            ),
        ));
    }
    group.finish();
    sebdb_parallel::set_max_threads(1);

    write_json(&json_rows);
}

fn write_json(rows: &[(String, usize, u64)]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let baseline = |workload: &str| {
        rows.iter()
            .find(|(w, t, _)| w == workload && *t == 1)
            .map(|(_, _, ns)| *ns)
            .unwrap_or(1)
    };
    let mut entries = String::new();
    for (workload, threads, ns) in rows {
        let speedup = baseline(workload) as f64 / (*ns).max(1) as f64;
        entries.push_str(&format!(
            "    {{\"workload\": \"{workload}\", \"threads\": {threads}, \
             \"mean_ns_per_iter\": {ns}, \"speedup_vs_1\": {speedup:.3}}},\n"
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"parallel_speedup\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"speedup_vs_1 is bounded by the host cpu count; on a \
         1-cpu host all caps run effectively sequentially\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, body).expect("write BENCH_parallel.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, parallel_speedup);
criterion_main!(benches);
