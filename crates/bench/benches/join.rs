//! Criterion benches for Figs. 13–16: on-chain join (Q5) and
//! on-off-chain join (Q6) under hash-scan, hash-bitmap and layered
//! sort-merge plans.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::Strategy;
use sebdb_bench::datagen::{join_bed, onoff_bed, Placement};
use sebdb_bench::workload::{run_q5, run_q6};
use std::time::Duration;

fn fig13_14_onchain_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_join_q5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [15u64, 30] {
        for (label, strategy) in [
            ("hash_scan", Strategy::Scan),
            ("hash_bitmap", Strategy::Bitmap),
            ("layered_sortmerge", Strategy::Layered),
        ] {
            let bed = join_bed(blocks, 40, 100, Placement::Uniform, 5);
            group.bench_with_input(BenchmarkId::new(label, blocks), &bed, |b, bed| {
                b.iter(|| run_q5(bed, strategy).len())
            });
        }
    }
    group.finish();
}

fn fig15_16_onoff_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_onoff_q6");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [15u64, 30] {
        for (label, strategy) in [
            ("hash_scan", Strategy::Scan),
            ("hash_bitmap", Strategy::Bitmap),
            ("layered_sortmerge", Strategy::Layered),
        ] {
            let bed = onoff_bed(blocks, 40, 80, 200, Placement::Uniform, 6);
            group.bench_with_input(BenchmarkId::new(label, blocks), &bed, |b, bed| {
                b.iter(|| run_q6(bed, strategy).len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig13_14_onchain_join, fig15_16_onoff_join);
criterion_main!(benches);
