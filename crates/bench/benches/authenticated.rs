//! Criterion benches for Figs. 17–19: authenticated queries — ALI
//! serving + client verification vs the ship-all-blocks basic path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{serve_authenticated_query, serve_auxiliary_digest, ThinClient};
use sebdb_bench::datagen::{range_bed, Placement, ORG1};
use sebdb_bench::workload::q4_key_predicate;
use std::time::Duration;

fn fig18_server_side(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_auth_server");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [15u64, 30] {
        let bed = range_bed(blocks, 40, 100, Placement::Uniform, 7);
        let pred = q4_key_predicate();
        group.bench_with_input(BenchmarkId::new("ALI", blocks), &bed, |b, bed| {
            b.iter(|| {
                serve_authenticated_query(&bed.ledger, Some("donate"), "amount", &pred, None)
                    .unwrap()
                    .vo_bytes()
            })
        });
        group.bench_with_input(BenchmarkId::new("basic", blocks), &bed, |b, bed| {
            b.iter(|| {
                // Basic approach: ship every block.
                (0..bed.ledger.height())
                    .map(|h| bed.ledger.read_block(h).unwrap().transactions.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn fig19_client_side(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_auth_client");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [15u64, 30] {
        let bed = range_bed(blocks, 40, 100, Placement::Uniform, 8);
        let pred = q4_key_predicate();
        let response =
            serve_authenticated_query(&bed.ledger, Some("donate"), "amount", &pred, None).unwrap();
        let digest = serve_auxiliary_digest(
            &bed.ledger,
            Some("donate"),
            "amount",
            &pred,
            None,
            response.vo.height,
        )
        .unwrap();
        let client = ThinClient::new();
        group.bench_function(BenchmarkId::new("ALI_verify", blocks), |b| {
            b.iter(|| {
                client
                    .verify(&pred, &response, &[digest, digest], 2)
                    .unwrap()
            })
        });

        let mut basic_client = ThinClient::new();
        basic_client.sync_headers(&bed.ledger);
        let shipped: Vec<_> = (0..bed.ledger.height())
            .map(|h| (*bed.ledger.read_block(h).unwrap()).clone())
            .collect();
        group.bench_function(BenchmarkId::new("basic_verify", blocks), |b| {
            b.iter(|| {
                basic_client
                    .verify_blocks_basic(&shipped, |t| t.sender == ORG1)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig18_server_side, fig19_client_side);
criterion_main!(benches);
