//! Write-path sweep (Fig. 7): blocks/s of the three-stage
//! seal | persist | index pipeline across applier lanes × pipeline
//! depth × relation count.
//!
//! Depth 1 with one lane is the sequential reference applier (one
//! thread runs all three stages); depth ≥ 2 overlaps sealing of block
//! N with persistence of block N−1; lanes ≥ 2 additionally fan the
//! index stage into relation-sharded appliers that maintain their
//! tables' layered/ALI families in parallel. Every relation carries a
//! pre-built layered index so lanes do real index maintenance, and the
//! relation sweep shows sharding only pays when tuples spread over
//! enough tables to keep the lanes busy.
//!
//! Besides the criterion output, the run writes `BENCH_writepath.json`
//! at the repository root with mean ns/block, blocks/s, the speedup of
//! each lane count over lanes=1 at the same (depth, relations), and
//! the host CPU count: lanes trade threads for index-stage overlap, so
//! on a single-core host every stage time-slices one core and the
//! honest expectation is ~1.0× (channel and fan-out overhead may even
//! make it slightly worse).
//!
//! `SEBDB_BENCH_SMOKE=1` runs a tiny sweep and writes
//! `target/BENCH_writepath_smoke.json` instead (CI schema check),
//! leaving the committed numbers untouched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{ApplyPipeline, Ledger, SchemaManager};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::hmac::hmac_sha256;
use sebdb_crypto::sig::KeyId;
use sebdb_crypto::MacKeypair;
use sebdb_storage::BlockStore;
use sebdb_types::{Codec, Column, DataType, TableSchema, Transaction, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Sweep {
    lanes: &'static [usize],
    depths: &'static [usize],
    relations: &'static [usize],
    partitions: &'static [usize],
    blocks: u64,
    batch: usize,
    iters: u32,
}

fn smoke() -> bool {
    std::env::var("SEBDB_BENCH_SMOKE").is_ok()
}

fn sweep() -> Sweep {
    if smoke() {
        Sweep {
            lanes: &[1, 2],
            depths: &[1, 2],
            relations: &[2],
            partitions: &[1, 8],
            blocks: 6,
            batch: 16,
            iters: 1,
        }
    } else {
        Sweep {
            lanes: &[1, 2, 4],
            depths: &[1, 4],
            relations: &[1, 8],
            partitions: &[1, 8],
            blocks: 24,
            batch: 64,
            iters: 3,
        }
    }
}

fn rel_schema(r: usize) -> TableSchema {
    TableSchema::new(
        format!("rel{r}"),
        vec![
            Column::new("donor", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// `blocks` blocks of `batch` insert transactions round-robined over
/// `relations` tables, with fixed timestamps so every run seals the
/// same bytes.
fn make_blocks(blocks: u64, batch: usize, relations: usize) -> Vec<OrderedBlock> {
    let mut tid = 1u64;
    (0..blocks)
        .map(|seq| {
            let txs = (0..batch)
                .map(|i| {
                    let mut t = Transaction::new(
                        1_000 + seq,
                        KeyId([0xA1; 8]),
                        format!("rel{}", i % relations),
                        vec![
                            Value::str(format!("donor-{seq}-{i}")),
                            Value::decimal((seq as i64 * batch as i64 + i as i64) % 997),
                        ],
                    );
                    t.tid = tid;
                    tid += 1;
                    t.sig = vec![0u8; 33];
                    t
                })
                .collect();
            OrderedBlock {
                seq,
                timestamp_ms: 1_000 + seq,
                txs,
            }
        })
        .collect()
}

/// One full run: fresh in-memory ledger with a real-cost MAC verifier
/// (sealer-side work) and a pre-built layered index per relation
/// (index-stage work), feeding an [`ApplyPipeline`] of the given depth
/// and lane count; returns once all blocks are persisted AND indexed.
fn run_once(
    depth: usize,
    lanes: usize,
    relations: usize,
    partitions: usize,
    blocks: &[OrderedBlock],
) {
    // Disk-backed store: the persist stage fans each block's extents
    // out across the relation partitions, which is the cost the
    // partitions axis sweeps.
    let dir = std::env::temp_dir().join(format!(
        "sebdb-bench-writepath-{}-d{depth}-l{lanes}-r{relations}-p{partitions}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = BlockStore::open(
        &dir,
        sebdb_storage::StoreConfig {
            sync_writes: false,
            partitions,
            ..sebdb_storage::StoreConfig::default()
        },
    )
    .expect("open bench store");
    let ledger = Arc::new(Ledger::new(Arc::new(store), MacKeypair::from_key([0xBE; 32])).unwrap());
    ledger.set_tx_verifier(Some(Box::new(|tx: &Transaction| {
        // Placeholder sigs carry no tag; charge the real HMAC cost and
        // accept, so the sealer stage does representative work.
        let tag = hmac_sha256(&[0xBE; 32], &tx.to_bytes());
        tag.as_bytes()[0] as usize != usize::MAX
    })));
    for r in 0..relations {
        ledger
            .create_layered_index(&rel_schema(r), "amount", Some((0..997).collect()))
            .unwrap();
    }
    let schemas = Arc::new(SchemaManager::new(None));
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start_with_lanes(
        Arc::clone(&ledger),
        Arc::clone(&schemas),
        rx,
        Arc::clone(&stopped),
        depth,
        lanes,
    );
    for b in blocks {
        tx.send(b.clone()).unwrap();
    }
    assert!(
        ledger.wait_for_height(
            blocks.len() as u64,
            Instant::now() + Duration::from_secs(60),
            || pipe.health().is_poisoned()
        ),
        "pipeline stalled: {:?}",
        pipe.health().error()
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();
    drop(ledger);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mean ns per block over `iters` runs after one warm-up call.
fn measure(mut f: impl FnMut(), iters: u32, blocks: u64) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / u128::from(iters) / u128::from(blocks)) as u64
}

struct Row {
    lanes: usize,
    depth: usize,
    relations: usize,
    partitions: usize,
    ns: u64,
}

fn pipeline_throughput(c: &mut Criterion) {
    let s = sweep();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    sebdb_parallel::set_max_threads(cpus);
    let mut rows: Vec<Row> = Vec::new();

    let mut group = c.benchmark_group("pipeline_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for &partitions in s.partitions {
        for &relations in s.relations {
            for &depth in s.depths {
                let blocks = make_blocks(s.blocks, s.batch, relations);
                for &lanes in s.lanes {
                    if !smoke() {
                        let id =
                            format!("lanes{lanes}/depth{depth}/rel{relations}/parts{partitions}");
                        group.bench_function(BenchmarkId::new("apply", &id), |b| {
                            b.iter(|| run_once(depth, lanes, relations, partitions, &blocks))
                        });
                    }
                    rows.push(Row {
                        lanes,
                        depth,
                        relations,
                        partitions,
                        ns: measure(
                            || run_once(depth, lanes, relations, partitions, &blocks),
                            s.iters,
                            s.blocks,
                        ),
                    });
                }
            }
        }
    }
    group.finish();
    sebdb_parallel::set_max_threads(1);

    write_json(&rows, s.batch, cpus);
}

fn write_json(rows: &[Row], batch: usize, cpus: usize) {
    let baseline = |depth: usize, relations: usize, partitions: usize| {
        rows.iter()
            .find(|r| {
                r.lanes == 1
                    && r.depth == depth
                    && r.relations == relations
                    && r.partitions == partitions
            })
            .map(|r| r.ns)
            .unwrap_or(1)
    };
    let mut entries = String::new();
    for r in rows {
        let blocks_per_s = 1e9 / r.ns.max(1) as f64;
        let speedup = baseline(r.depth, r.relations, r.partitions) as f64 / r.ns.max(1) as f64;
        entries.push_str(&format!(
            "    {{\"lanes\": {}, \"depth\": {}, \"relations\": {}, \"partitions\": {}, \
             \"batch_txs\": {batch}, \
             \"mean_ns_per_block\": {}, \"blocks_per_s\": {blocks_per_s:.1}, \
             \"speedup_vs_lane1\": {speedup:.3}}},\n",
            r.lanes, r.depth, r.relations, r.partitions, r.ns
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"write_path\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"lanes=1 depth=1 is the sequential reference applier; depth N \
         overlaps seal/persist of block i with indexing of block i-1; lanes M \
         shards the index stage by relation across M applier threads. The \
         overlap needs >=2 cores to pay off: on a 1-cpu host all stages and \
         lanes time-slice one core and ~1.0x (or slightly below, channel and \
         fan-out overhead) is the honest expectation. The persist stage \
         writes a disk-backed store; partitions=1 is the single-sequence \
         layout, partitions=8 fans each block's extents across the relation \
         partitions\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = if smoke() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_writepath_smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_writepath.json")
    };
    std::fs::write(path, body).expect("write BENCH_writepath.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, pipeline_throughput);
criterion_main!(benches);
