//! Staged write-pipeline sweep: blocks/s of the seal→persist→index
//! applier across pipeline depth × ingest batch size × worker cap.
//!
//! Depth 1 is the sequential reference applier (one thread does all
//! three stages); depth ≥ 2 runs the two-stage pipeline where Merkle +
//! MAC sealing of block N overlaps index maintenance of block N−1.
//! Besides the criterion output, the run writes `BENCH_pipeline.json`
//! at the repository root with mean ns/block, blocks/s, and the
//! speedup of each depth over depth 1 at the same (batch, threads),
//! plus the host CPU count: pipelining trades threads for latency
//! overlap, so on a single-core host the two stages time-slice one
//! core and the honest expectation is ~1.0× (channel overhead may even
//! make it slightly worse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{ApplyPipeline, Ledger, SchemaManager};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::hmac::hmac_sha256;
use sebdb_crypto::sig::KeyId;
use sebdb_crypto::MacKeypair;
use sebdb_storage::BlockStore;
use sebdb_types::{Codec, Transaction, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEPTHS: [usize; 3] = [1, 2, 4];
const BATCHES: [usize; 2] = [64, 256];
const THREAD_CAPS: [usize; 2] = [1, 4];
const BLOCKS: u64 = 32;

fn make_blocks(batch: usize) -> Vec<OrderedBlock> {
    let mut tid = 1u64;
    (0..BLOCKS)
        .map(|seq| {
            let txs = (0..batch)
                .map(|i| {
                    let mut t = Transaction::new(
                        1_000 + seq,
                        KeyId([0xA1; 8]),
                        "donate",
                        vec![
                            Value::str(format!("donor-{seq}-{i}")),
                            Value::str("education"),
                            Value::decimal((seq as i64 * batch as i64 + i as i64) % 997),
                        ],
                    );
                    t.tid = tid;
                    tid += 1;
                    t.sig = vec![0u8; 33];
                    t
                })
                .collect();
            OrderedBlock {
                seq,
                timestamp_ms: 1_000 + seq,
                txs,
            }
        })
        .collect()
}

/// One full run: fresh in-memory ledger with a real-cost MAC verifier
/// (sealer-side work) feeding an [`ApplyPipeline`] of the given depth;
/// returns once all [`BLOCKS`] are persisted AND indexed.
fn run_once(depth: usize, blocks: &[OrderedBlock]) {
    let ledger = Arc::new(
        Ledger::new(
            Arc::new(BlockStore::in_memory()),
            MacKeypair::from_key([0xBE; 32]),
        )
        .unwrap(),
    );
    ledger.set_tx_verifier(Some(Box::new(|tx: &Transaction| {
        // Placeholder sigs carry no tag; charge the real HMAC cost and
        // accept, so the sealer stage does representative work.
        let tag = hmac_sha256(&[0xBE; 32], &tx.to_bytes());
        tag.as_bytes()[0] as usize != usize::MAX
    })));
    let schemas = Arc::new(SchemaManager::new(None));
    let stopped = Arc::new(AtomicBool::new(false));
    let (tx, rx) = crossbeam::channel::unbounded();
    let mut pipe = ApplyPipeline::start(
        Arc::clone(&ledger),
        Arc::clone(&schemas),
        rx,
        Arc::clone(&stopped),
        depth,
    );
    for b in blocks {
        tx.send(b.clone()).unwrap();
    }
    assert!(
        ledger.wait_for_height(BLOCKS, Instant::now() + Duration::from_secs(60), || pipe
            .health()
            .is_poisoned()),
        "pipeline stalled: {:?}",
        pipe.health().error()
    );
    stopped.store(true, Ordering::Relaxed);
    drop(tx);
    pipe.join();
}

/// Mean ns per block over `iters` runs after one warm-up call.
fn measure(mut f: impl FnMut(), iters: u32) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / u128::from(iters) / u128::from(BLOCKS)) as u64
}

fn pipeline_throughput(c: &mut Criterion) {
    let mut json_rows: Vec<(usize, usize, usize, u64)> = Vec::new();

    let mut group = c.benchmark_group("pipeline_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for threads in THREAD_CAPS {
        sebdb_parallel::set_max_threads(threads);
        for batch in BATCHES {
            let blocks = make_blocks(batch);
            for depth in DEPTHS {
                let id = format!("depth{depth}/batch{batch}/threads{threads}");
                group.bench_function(BenchmarkId::new("apply", &id), |b| {
                    b.iter(|| run_once(depth, &blocks))
                });
                json_rows.push((
                    depth,
                    batch,
                    threads,
                    measure(|| run_once(depth, &blocks), 5),
                ));
            }
        }
    }
    group.finish();
    sebdb_parallel::set_max_threads(1);

    write_json(&json_rows);
}

fn write_json(rows: &[(usize, usize, usize, u64)]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let baseline = |batch: usize, threads: usize| {
        rows.iter()
            .find(|(d, b, t, _)| *d == 1 && *b == batch && *t == threads)
            .map(|(_, _, _, ns)| *ns)
            .unwrap_or(1)
    };
    let mut entries = String::new();
    for (depth, batch, threads, ns) in rows {
        let blocks_per_s = 1e9 / (*ns).max(1) as f64;
        let speedup = baseline(*batch, *threads) as f64 / (*ns).max(1) as f64;
        entries.push_str(&format!(
            "    {{\"depth\": {depth}, \"batch_txs\": {batch}, \"threads\": {threads}, \
             \"mean_ns_per_block\": {ns}, \"blocks_per_s\": {blocks_per_s:.1}, \
             \"speedup_vs_depth1\": {speedup:.3}}},\n"
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"pipeline_throughput\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"depth 1 = sequential applier; depth N overlaps sealing of \
         block i with indexing of block i-1 on a second thread. The overlap \
         needs >=2 cores to pay off: on a 1-cpu host both stages time-slice \
         one core and ~1.0x (or slightly below, channel overhead) is the \
         honest expectation\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    std::fs::write(path, body).expect("write BENCH_pipeline.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, pipeline_throughput);
criterion_main!(benches);
