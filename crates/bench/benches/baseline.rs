//! Criterion benches for Figs. 20–21: SEBDB tracking vs the
//! ChainSQL-style baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::Strategy;
use sebdb_baseline::ChainSqlBaseline;
use sebdb_bench::datagen::{tracking2_bed, tracking_bed, Placement, ORG1};
use sebdb_bench::workload::{run_q2, run_q3};
use std::time::Duration;

fn fig20_one_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_vs_chainsql_1d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [20u64, 40] {
        let bed = tracking_bed(blocks, 40, 200, Placement::Uniform, 9);
        let baseline = ChainSqlBaseline::new();
        for b in 0..blocks {
            baseline.ingest_block(&bed.ledger.read_block(b).unwrap());
        }
        group.bench_with_input(BenchmarkId::new("SEBDB", blocks), &bed, |b, bed| {
            b.iter(|| run_q2(bed, Strategy::Layered).len())
        });
        group.bench_function(BenchmarkId::new("ChainSQL", blocks), |b| {
            b.iter(|| baseline.track_operator(&ORG1).len())
        });
    }
    group.finish();
}

fn fig21_two_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig21_vs_chainsql_2d");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // Fixed result (100 transfers by org1), growing org1 volume: the
    // ChainSQL client filters everything org1 ever sent.
    for org1_total in [200usize, 800] {
        let bed = tracking2_bed(30, 40, org1_total, 200, 100, Placement::Uniform, 10);
        let baseline = ChainSqlBaseline::new();
        for b in 0..30 {
            baseline.ingest_block(&bed.ledger.read_block(b).unwrap());
        }
        group.bench_with_input(BenchmarkId::new("SEBDB", org1_total), &bed, |b, bed| {
            b.iter(|| run_q3(bed, None, true, true, Strategy::Layered).len())
        });
        group.bench_function(BenchmarkId::new("ChainSQL", org1_total), |b| {
            b.iter(|| baseline.track_operator_operation(&ORG1, "transfer").len())
        });
    }
    group.finish();
}

criterion_group!(benches, fig20_one_dimension, fig21_two_dimension);
criterion_main!(benches);
