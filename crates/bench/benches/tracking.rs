//! Criterion benches for Figs. 8–10: the track-trace operation under
//! scan / bitmap / layered access paths, uniform and Gaussian
//! placement, one and two dimensions — plus the materialized-view
//! sweep (DESIGN §15): a repeated `TRACE` served from an incremental
//! view (`mode=view`, O(result) per query plus an O(delta) fold per
//! block) against fresh re-execution (`mode=rescan`, O(chain) per
//! query).
//!
//! Besides the criterion output, the views sweep writes
//! `BENCH_views.json` at the repository root. `SEBDB_BENCH_SMOKE=1`
//! runs a tiny sweep, writes `target/BENCH_views_smoke.json` instead
//! (CI schema check), skips the criterion-only figure groups, and
//! asserts the delta-maintained view beats the rescan on repeat
//! queries even on this 1-CPU-honest host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{Executor, Ledger, Strategy};
use sebdb_bench::datagen::{tracking2_bed, tracking_bed, Placement, TestBed};
use sebdb_bench::workload::{run_q2, run_q3};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::{LogicalPlan, TraceSpec};
use sebdb_storage::BlockStore;
use sebdb_types::{Transaction, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("SEBDB_BENCH_SMOKE").is_ok()
}

fn fig8_tracking_by_chain_size(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let mut group = c.benchmark_group("fig8_tracking_q2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [20u64, 40] {
        for (label, strategy, placement) in [
            ("SU", Strategy::Scan, Placement::Uniform),
            ("BU", Strategy::Bitmap, Placement::Uniform),
            ("LU", Strategy::Layered, Placement::Uniform),
            (
                "LG",
                Strategy::Layered,
                Placement::Gaussian { std_blocks: 4.0 },
            ),
        ] {
            let bed = tracking_bed(blocks, 50, 200, placement, 1);
            group.bench_with_input(BenchmarkId::new(label, blocks), &bed, |b, bed| {
                b.iter(|| run_q2(bed, strategy).len())
            });
        }
    }
    group.finish();
}

fn fig10_two_dimension_windows(c: &mut Criterion) {
    if smoke() {
        return;
    }
    let mut group = c.benchmark_group("fig10_tracking_q3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let bed = tracking2_bed(40, 50, 400, 400, 100, Placement::Uniform, 2);
    for i in 1..=3u32 {
        let span = 40 / 2u64.pow(i - 1);
        let (s, e) = TestBed::window_covering_blocks(40 - span, 39);
        group.bench_with_input(BenchmarkId::new("TI", format!("TW{i}")), &bed, |b, bed| {
            b.iter(|| run_q3(bed, Some((s, e)), true, true, Strategy::Layered).len())
        });
        group.bench_with_input(BenchmarkId::new("SI", format!("TW{i}")), &bed, |b, bed| {
            b.iter(|| {
                run_q3(bed, Some((s, e)), true, false, Strategy::Layered)
                    .rows
                    .iter()
                    .filter(|r| r[4] == sebdb_types::Value::str("transfer"))
                    .count()
            })
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// Materialized-view sweep (mode=rescan | mode=view)
// ---------------------------------------------------------------------------

const TRACKED: KeyId = KeyId([0xA1; 8]);
const OTHER: KeyId = KeyId([0xA2; 8]);
/// Fixed result size across all chain lengths: every repeat `TRACE`
/// returns exactly this many rows, so `mode=view` (O(result)) must
/// stay flat as the chain grows while `mode=rescan` (O(chain)) grows.
const HITS: u64 = 24;
const FILLER_PER_BLOCK: u64 = 12;
const REPEATS: u32 = 50;

struct ViewSweep {
    chain_lengths: &'static [u64],
}

fn views_sweep() -> ViewSweep {
    if smoke() {
        ViewSweep {
            chain_lengths: &[48, 96],
        }
    } else {
        ViewSweep {
            chain_lengths: &[1_000, 3_000, 10_000],
        }
    }
}

fn views_signer() -> MacKeypair {
    MacKeypair::from_key([0x51u8; 32])
}

fn tracked_spec() -> TraceSpec {
    TraceSpec::new(None, Some(TRACKED.0), Some("donate"))
}

fn views_block(seq: u64, blocks: u64) -> OrderedBlock {
    let ts = 100_000 + seq;
    let mut txs = Vec::new();
    // HITS tracked `donate` rows spread evenly over the whole chain;
    // everything else is filler the trace must skip past.
    if seq.is_multiple_of((blocks / HITS).max(1)) && seq / (blocks / HITS).max(1) < HITS {
        txs.push(Transaction::new(
            ts,
            TRACKED,
            "donate",
            vec![Value::Int(seq as i64)],
        ));
    }
    for i in 0..FILLER_PER_BLOCK {
        txs.push(Transaction::new(
            ts,
            OTHER,
            "noise",
            vec![Value::Int((seq * FILLER_PER_BLOCK + i) as i64)],
        ));
    }
    for (i, tx) in txs.iter_mut().enumerate() {
        tx.tid = seq * 100 + i as u64 + 1;
    }
    OrderedBlock {
        seq,
        timestamp_ms: ts,
        txs,
    }
}

/// Appends the chain (registering the tracked view first in
/// `mode=view`, so every append pays its O(delta) fold) and returns
/// the ledger plus the mean append time per block.
fn build_views_chain(blocks: u64, with_view: bool) -> (Ledger, u64) {
    let ledger = Ledger::new(Arc::new(BlockStore::in_memory()), views_signer()).unwrap();
    if with_view {
        ledger.register_trace_view(tracked_spec()).unwrap();
    }
    let start = Instant::now();
    for seq in 0..blocks {
        ledger.append_ordered(views_block(seq, blocks)).unwrap();
    }
    let append_us_per_block = (start.elapsed().as_micros() / u128::from(blocks)) as u64;
    (ledger, append_us_per_block)
}

fn trace_query(ledger: &Ledger, strategy: Strategy) -> sebdb::QueryResult {
    let plan = LogicalPlan::Trace {
        window: None,
        operator: Some(Value::Bytes(TRACKED.0.to_vec())),
        operation: Some("donate".into()),
    };
    Executor::new(ledger, None)
        .execute(&plan, strategy)
        .unwrap()
}

/// Mean repeat-query latency: the same `TRACE` issued back to back, as
/// an auditor dashboard would.
fn repeat_query_us(ledger: &Ledger, strategy: Strategy) -> u64 {
    let start = Instant::now();
    for _ in 0..REPEATS {
        assert_eq!(trace_query(ledger, strategy).len(), HITS as usize);
    }
    (start.elapsed().as_micros() / u128::from(REPEATS)) as u64
}

struct ViewRow {
    blocks: u64,
    mode: &'static str,
    repeat_query_us: u64,
    append_us_per_block: u64,
    result_rows: usize,
}

fn views_delta_vs_rescan(c: &mut Criterion) {
    let sw = views_sweep();
    let mut rows: Vec<ViewRow> = Vec::new();

    let mut group = c.benchmark_group("views_tracking");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for &blocks in sw.chain_lengths {
        // Each mode builds, measures, and drops its chain before the
        // other starts, so neither's resident indexes skew the other's
        // append or query timings.

        // mode=rescan: no view registered; every repeat query re-walks
        // the chain through the layered index (the paper's best path).
        let rescan_result = {
            let (plain, plain_append) = build_views_chain(blocks, false);
            let result = trace_query(&plain, Strategy::Layered);
            rows.push(ViewRow {
                blocks,
                mode: "rescan",
                repeat_query_us: repeat_query_us(&plain, Strategy::Layered),
                append_us_per_block: plain_append,
                result_rows: result.len(),
            });
            if !smoke() {
                group.bench_function(BenchmarkId::new("rescan", blocks), |b| {
                    b.iter(|| trace_query(&plain, Strategy::Layered).len())
                });
            }
            result
        };

        // mode=view: the view folds each block's delta at apply time;
        // repeat queries are served from the materialized result.
        let (viewed, view_append) = build_views_chain(blocks, true);
        let view_result = trace_query(&viewed, Strategy::Auto);
        assert_eq!(
            view_result, rescan_result,
            "view result diverged from rescan at {blocks} blocks"
        );
        rows.push(ViewRow {
            blocks,
            mode: "view",
            repeat_query_us: repeat_query_us(&viewed, Strategy::Auto),
            append_us_per_block: view_append,
            result_rows: view_result.len(),
        });
        if !smoke() {
            group.bench_function(BenchmarkId::new("view", blocks), |b| {
                b.iter(|| trace_query(&viewed, Strategy::Auto).len())
            });
        }
    }
    group.finish();

    if smoke() {
        // The whole point, asserted at 1 CPU on the largest smoke
        // chain: serving the delta-maintained view beats re-running
        // the trace.
        let largest = *sw.chain_lengths.last().unwrap();
        let rescan = rows
            .iter()
            .find(|r| r.mode == "rescan" && r.blocks == largest)
            .unwrap();
        let view = rows
            .iter()
            .find(|r| r.mode == "view" && r.blocks == largest)
            .unwrap();
        assert!(
            view.repeat_query_us <= rescan.repeat_query_us,
            "view repeat query ({}us) lost to rescan ({}us) at {largest} blocks",
            view.repeat_query_us,
            rescan.repeat_query_us
        );
    }
    write_views_json(&rows);
}

fn write_views_json(rows: &[ViewRow]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries = String::new();
    for r in rows {
        entries.push_str(&format!(
            "    {{\"blocks\": {}, \"mode\": \"{}\", \"repeat_query_us\": {}, \
             \"append_us_per_block\": {}, \"result_rows\": {}}},\n",
            r.blocks, r.mode, r.repeat_query_us, r.append_us_per_block, r.result_rows
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"views\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"repeated TRACE (operator+operation, fixed {HITS}-row result) \
         served from an incremental materialized view (mode=view: fold each \
         block's delta at apply time, answer in O(result) with zero index probes) \
         vs fresh re-execution through the layered index (mode=rescan, O(chain) \
         per query). repeat_query_us for mode=view should stay flat as blocks \
         grow while mode=rescan grows with the chain; append_us_per_block shows \
         the per-block fold overhead the view adds to the write path\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = if smoke() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_views_smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_views.json")
    };
    std::fs::write(path, body).expect("write BENCH_views.json");
    eprintln!("wrote {path}");
}

criterion_group!(
    benches,
    fig8_tracking_by_chain_size,
    fig10_two_dimension_windows,
    views_delta_vs_rescan
);
criterion_main!(benches);
