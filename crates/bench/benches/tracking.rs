//! Criterion benches for Figs. 8–10: the track-trace operation under
//! scan / bitmap / layered access paths, uniform and Gaussian
//! placement, one and two dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::Strategy;
use sebdb_bench::datagen::{tracking2_bed, tracking_bed, Placement, TestBed};
use sebdb_bench::workload::{run_q2, run_q3};
use std::time::Duration;

fn fig8_tracking_by_chain_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_tracking_q2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for blocks in [20u64, 40] {
        for (label, strategy, placement) in [
            ("SU", Strategy::Scan, Placement::Uniform),
            ("BU", Strategy::Bitmap, Placement::Uniform),
            ("LU", Strategy::Layered, Placement::Uniform),
            (
                "LG",
                Strategy::Layered,
                Placement::Gaussian { std_blocks: 4.0 },
            ),
        ] {
            let bed = tracking_bed(blocks, 50, 200, placement, 1);
            group.bench_with_input(BenchmarkId::new(label, blocks), &bed, |b, bed| {
                b.iter(|| run_q2(bed, strategy).len())
            });
        }
    }
    group.finish();
}

fn fig10_two_dimension_windows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_tracking_q3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let bed = tracking2_bed(40, 50, 400, 400, 100, Placement::Uniform, 2);
    for i in 1..=3u32 {
        let span = 40 / 2u64.pow(i - 1);
        let (s, e) = TestBed::window_covering_blocks(40 - span, 39);
        group.bench_with_input(BenchmarkId::new("TI", format!("TW{i}")), &bed, |b, bed| {
            b.iter(|| run_q3(bed, Some((s, e)), true, true, Strategy::Layered).len())
        });
        group.bench_with_input(BenchmarkId::new("SI", format!("TW{i}")), &bed, |b, bed| {
            b.iter(|| {
                run_q3(bed, Some((s, e)), true, false, Strategy::Layered)
                    .rows
                    .iter()
                    .filter(|r| r[4] == sebdb_types::Value::str("transfer"))
                    .count()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig8_tracking_by_chain_size,
    fig10_two_dimension_windows
);
criterion_main!(benches);
