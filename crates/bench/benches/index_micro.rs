//! Microbenchmarks of the index substrates (ablation material for
//! DESIGN.md's design choices): B⁺-tree bulk load vs insert, bitmap
//! AND, histogram bucketing, Merkle root, MB-tree proof round trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb_crypto::merkle::merkle_root;
use sebdb_index::mbtree::{AuthEntry, MbTree};
use sebdb_index::{BPlusTree, Bitmap, EqualDepthHistogram};
use sebdb_storage::TxPtr;
use sebdb_types::Value;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
}

fn bptree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree_build");
    configure(&mut group);
    for n in [1_000usize, 10_000] {
        let entries: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i)).collect();
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &entries, |b, e| {
            b.iter(|| BPlusTree::bulk_load(64, e.clone()).len())
        });
        group.bench_with_input(BenchmarkId::new("insert", n), &entries, |b, e| {
            b.iter(|| {
                let mut t = BPlusTree::with_order(64);
                for (k, v) in e {
                    t.insert(*k, *v);
                }
                t.len()
            })
        });
    }
    group.finish();
}

fn bitmap_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap_ops");
    configure(&mut group);
    let a = Bitmap::from_bits((0..100_000).step_by(3));
    let b = Bitmap::from_bits((0..100_000).step_by(7));
    group.bench_function("and_100k", |bench| bench.iter(|| a.and(&b).count_ones()));
    group.bench_function("intersects_100k", |bench| bench.iter(|| a.intersects(&b)));
    group.finish();
}

fn histogram_bucketing(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    configure(&mut group);
    let sample: Vec<i64> = (0..100_000).map(|i| (i * 37) % 1_000_003).collect();
    group.bench_function("build_100_buckets", |b| {
        b.iter(|| EqualDepthHistogram::from_sample(sample.clone(), 100).bucket_count())
    });
    let hist = EqualDepthHistogram::from_sample(sample, 100);
    group.bench_function("bucket_of", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 997;
            hist.bucket_of(i % 1_000_003)
        })
    });
    group.finish();
}

fn merkle_and_mbtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("authenticated_structures");
    configure(&mut group);
    let leaves: Vec<Vec<u8>> = (0..1_000u32).map(|i| i.to_le_bytes().to_vec()).collect();
    group.bench_function("merkle_root_1k", |b| b.iter(|| merkle_root(&leaves)));

    let entries: Vec<AuthEntry> = (0..1_000i64)
        .map(|i| AuthEntry {
            key: Value::Int(i),
            tx_hash: sebdb_crypto::sha256(&i.to_le_bytes()),
            ptr: TxPtr {
                block: 0,
                index: i as u32,
            },
        })
        .collect();
    group.bench_function("mbtree_build_1k", |b| {
        b.iter(|| MbTree::build(entries.clone(), 64).root())
    });
    let tree = MbTree::build(entries, 64);
    group.bench_function("mbtree_range_proof", |b| {
        b.iter(|| {
            tree.range_query(&Value::Int(100), &Value::Int(200))
                .1
                .byte_len()
        })
    });
    let (results, proof) = tree.range_query(&Value::Int(100), &Value::Int(200));
    group.bench_function("mbtree_verify", |b| {
        b.iter(|| {
            MbTree::verify_range(
                &tree.root(),
                &Value::Int(100),
                &Value::Int(200),
                &results,
                &proof,
                64,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bptree_build,
    bitmap_ops,
    histogram_bucketing,
    merkle_and_mbtree
);
criterion_main!(benches);
