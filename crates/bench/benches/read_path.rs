//! Concurrent read-path sweep (Figs. 8–14, 22): grouped tuple reads
//! and sequential block scans over the disk backend, across reader
//! thread count × cache mode × read granularity.
//!
//! The disk chain spans multiple segment files, so the thread sweep
//! exercises the sharded handle cache and positioned reads — the
//! no-global-lock property this PR's storage rework buys. Besides the
//! criterion output, the run writes `BENCH_readpath.json` at the
//! repository root (mean ns/read, reads/s, speedup of each thread
//! count over 1 thread at the same mode × granularity, host CPU
//! count). Positioned reads only overlap if the host has cores to run
//! them: on a 1-cpu host ~1.0× is the honest expectation.
//!
//! `SEBDB_BENCH_SMOKE=1` runs a tiny sweep and writes
//! `target/BENCH_readpath_smoke.json` instead (CI schema check),
//! leaving the committed numbers untouched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb_crypto::sha256::Digest;
use sebdb_crypto::sig::KeyId;
use sebdb_storage::{BlockCache, BlockStore, CacheMode, CachedStore, StoreConfig, TxCache, TxPtr};
use sebdb_types::{Block, Transaction, Value};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_CAPS: [usize; 2] = [1, 4];
const MODES: [&str; 3] = ["none", "block", "tx"];
const GRANULARITIES: [&str; 3] = ["tuple", "block", "relation"];
/// Relation partition counts: 1 is the single-sequence layout, 8 the
/// full partitioned layout (relation scans skip unrelated partitions).
const PARTITIONS: [usize; 2] = [1, 8];
/// The chain round-robins tuples over these relations, so the
/// "relation" granularity scans a strict subset of each block.
const TABLES: [&str; 3] = ["donate", "account", "project"];

struct Sweep {
    nblocks: u64,
    ntx: usize,
    npointers: usize,
    iters: u32,
}

fn smoke() -> bool {
    std::env::var("SEBDB_BENCH_SMOKE").is_ok()
}

fn sweep() -> Sweep {
    if smoke() {
        Sweep {
            nblocks: 8,
            ntx: 8,
            npointers: 64,
            iters: 2,
        }
    } else {
        Sweep {
            nblocks: 64,
            ntx: 32,
            npointers: 2048,
            iters: 5,
        }
    }
}

fn build_chain(dir: &PathBuf, nblocks: u64, ntx: usize, partitions: usize) -> Arc<BlockStore> {
    let _ = std::fs::remove_dir_all(dir);
    let store = BlockStore::open(
        dir,
        StoreConfig {
            // Small segments so the chain spans several files and the
            // thread sweep hits the sharded handle cache.
            segment_size: 64 * 1024,
            sync_writes: false,
            partitions,
            ..StoreConfig::default()
        },
    )
    .expect("open bench store");
    for h in 0..nblocks {
        let txs = (0..ntx)
            .map(|i| {
                let mut t = Transaction::new(
                    1_000 + h,
                    KeyId([0xA1; 8]),
                    TABLES[i % TABLES.len()],
                    vec![
                        Value::str(format!("donor-{h}-{i}")),
                        Value::str("education"),
                        Value::decimal((h as i64 * ntx as i64 + i as i64) % 997),
                    ],
                );
                t.tid = h * ntx as u64 + i as u64 + 1;
                t.sig = vec![0u8; 33];
                t
            })
            .collect();
        store
            .append(&Block::seal(Digest::ZERO, h, 1_000 + h, txs, |_| {
                vec![0u8; 4]
            }))
            .expect("append bench block");
    }
    Arc::new(store)
}

/// Deterministic pointer workload (LCG — no RNG dependency): random
/// tuples with same-block clusters that the group path coalesces.
fn pointers(nblocks: u64, ntx: usize, n: usize) -> Vec<TxPtr> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            TxPtr {
                block: (state >> 33) % nblocks,
                index: ((state >> 17) % ntx as u64) as u32,
            }
        })
        .collect()
}

fn mode_of(name: &str) -> CacheMode {
    match name {
        "none" => CacheMode::None,
        "block" => CacheMode::Block(BlockCache::new(4 << 20)),
        "tx" => CacheMode::Tx(TxCache::new(4 << 20)),
        _ => unreachable!(),
    }
}

/// One tuple-granularity run: grouped reads over the full pointer
/// workload through a fresh cache (duplicated pointers exercise hits).
fn run_tuples(store: &Arc<BlockStore>, mode: &str, ptrs: &[TxPtr]) {
    let cached = CachedStore::new(Arc::clone(store), mode_of(mode));
    let txs = cached.read_txs_grouped(ptrs).expect("grouped read");
    assert_eq!(txs.len(), ptrs.len());
}

/// One relation-granularity run: a single-relation scan of the whole
/// chain — on the partitioned layout this fetches only the table's
/// partition extents instead of whole blocks.
fn run_relation(store: &Arc<BlockStore>, mode: &str, nblocks: u64) {
    let cached = CachedStore::new(Arc::clone(store), mode_of(mode));
    let bids: Vec<u64> = (0..nblocks).collect();
    let runs: Vec<&[u64]> = bids
        .chunks(sebdb_storage::readahead_blocks().max(1))
        .collect();
    let fetched = sebdb_parallel::par_map(&runs, 1, |run| cached.read_relation_txs(run, TABLES[0]));
    let mut rows = 0usize;
    for batches in fetched {
        for txs in batches.expect("relation read") {
            rows += txs
                .iter()
                .filter(|(_, t)| t.tname.eq_ignore_ascii_case(TABLES[0]))
                .count();
        }
    }
    assert!(rows > 0);
}

/// One block-granularity run: a sequential scan of the whole chain via
/// the readahead span path.
fn run_blocks(store: &Arc<BlockStore>, mode: &str, nblocks: u64) {
    let cached = CachedStore::new(Arc::clone(store), mode_of(mode));
    let bids: Vec<u64> = (0..nblocks).collect();
    let runs: Vec<&[u64]> = bids
        .chunks(sebdb_storage::readahead_blocks().max(1))
        .collect();
    let fetched = sebdb_parallel::par_map(&runs, 1, |run| cached.read_blocks_span(run));
    for blocks in fetched {
        for b in blocks.expect("span read") {
            assert!(!b.transactions.is_empty());
        }
    }
}

/// Mean ns per read over `iters` runs after one warm-up call.
fn measure(mut f: impl FnMut(), iters: u32, reads_per_run: u64) -> u64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed().as_nanos() / u128::from(iters) / u128::from(reads_per_run.max(1))) as u64
}

fn read_path(c: &mut Criterion) {
    let sw = sweep();
    let ptrs = pointers(sw.nblocks, sw.ntx, sw.npointers);

    // (partitions, granularity, mode, threads, mean ns per read)
    let mut rows: Vec<(usize, &str, &str, usize, u64)> = Vec::new();

    let mut group = c.benchmark_group("read_path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for partitions in PARTITIONS {
        let dir = std::env::temp_dir().join(format!(
            "sebdb-bench-readpath-p{partitions}-{}",
            std::process::id()
        ));
        let store = build_chain(&dir, sw.nblocks, sw.ntx, partitions);
        for threads in THREAD_CAPS {
            sebdb_parallel::set_max_threads(threads);
            for mode in MODES {
                for gran in GRANULARITIES {
                    let id = format!("{gran}/{mode}/threads{threads}/parts{partitions}");
                    let reads = match gran {
                        "tuple" => sw.npointers as u64,
                        _ => sw.nblocks,
                    };
                    let run = || match gran {
                        "tuple" => run_tuples(&store, mode, &ptrs),
                        "relation" => run_relation(&store, mode, sw.nblocks),
                        _ => run_blocks(&store, mode, sw.nblocks),
                    };
                    if !smoke() {
                        group.bench_function(BenchmarkId::new("read", &id), |b| b.iter(run));
                    }
                    rows.push((
                        partitions,
                        gran,
                        mode,
                        threads,
                        measure(run, sw.iters, reads),
                    ));
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
    sebdb_parallel::set_max_threads(1);

    write_json(&rows);
}

fn write_json(rows: &[(usize, &str, &str, usize, u64)]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let baseline = |parts: usize, gran: &str, mode: &str| {
        rows.iter()
            .find(|(p, g, m, t, _)| *p == parts && *g == gran && *m == mode && *t == 1)
            .map(|(_, _, _, _, ns)| *ns)
            .unwrap_or(1)
    };
    let mut entries = String::new();
    for (parts, gran, mode, threads, ns) in rows {
        let reads_per_s = 1e9 / (*ns).max(1) as f64;
        let speedup = baseline(*parts, gran, mode) as f64 / (*ns).max(1) as f64;
        entries.push_str(&format!(
            "    {{\"granularity\": \"{gran}\", \"cache_mode\": \"{mode}\", \
             \"partitions\": {parts}, \"threads\": {threads}, \"mean_ns_per_read\": {ns}, \
             \"reads_per_s\": {reads_per_s:.1}, \"speedup_vs_1thread\": {speedup:.3}}},\n"
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"read_path\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"grouped tuple reads and readahead block scans over a \
         multi-segment disk chain. Positioned reads through the sharded \
         handle cache only overlap if the host has cores to run them: the \
         >=1.5x 4-thread target needs a multi-core host; on a 1-cpu host \
         ~1.0x is the honest expectation (threads time-slice one core). \
         partitions=1 is the single-sequence layout; partitions=8 shards \
         extents by relation, so relation-granularity scans skip unrelated \
         partitions bytes\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = if smoke() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_readpath_smoke.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_readpath.json")
    };
    std::fs::write(path, body).expect("write BENCH_readpath.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, read_path);
criterion_main!(benches);
