//! Disk-resident index sweep (DESIGN §13): ledger open time vs chain
//! length with and without index checkpoints, and resident index bytes
//! vs the index-block cache capacity.
//!
//! Two claims under measurement:
//!
//! * **O(1) open** — with up-to-date checkpoints `Ledger::open` loads
//!   the fence-pointer top levels and replays only the tail, so open
//!   time stays flat (within 2×) as the chain grows 1k → 100k blocks;
//!   without checkpoints it replays every block and grows linearly.
//! * **Bounded residency** — a probed frozen index pages level-1 blocks
//!   through the shared cache, so resident index bytes stay bounded by
//!   `SEBDB_INDEX_CACHE_BLOCKS` where the `cache=∞` (capacity 0)
//!   reference grows with the number of distinct blocks touched —
//!   Eq. 3's per-block transfer term applied to the index itself.
//!
//! Besides the criterion output, the run writes
//! `BENCH_indexresident.json` at the repository root.
//! `SEBDB_BENCH_SMOKE=1` runs a tiny sweep and writes
//! `target/BENCH_indexresident_smoke.json` instead (CI schema check),
//! leaving the committed numbers untouched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb::{Executor, Ledger, SchemaManager, Strategy};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_sql::{BoundPredicate, BoundPredicateKind, CompareOp, LogicalPlan};
use sebdb_storage::{BlockStore, StoreConfig};
use sebdb_types::{Column, DataType, TableSchema, Transaction, Value};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SENDER: KeyId = KeyId([0xB7; 8]);
/// Amounts cycle modulo this prime so every probe key exists on chains
/// of every swept length.
const KEY_SPACE: u64 = 997;
/// Index-block cache capacities under sweep: a tight bound that forces
/// eviction, and 0 = unbounded — the `cache=∞` reference.
const CACHE_BLOCKS: [usize; 2] = [8, 0];

struct Sweep {
    chain_lengths: &'static [u64],
    probes: u64,
}

fn smoke() -> bool {
    std::env::var("SEBDB_BENCH_SMOKE").is_ok()
}

fn sweep() -> Sweep {
    if smoke() {
        Sweep {
            chain_lengths: &[48, 96],
            probes: 16,
        }
    } else {
        Sweep {
            chain_lengths: &[1_000, 10_000, 100_000],
            probes: 128,
        }
    }
}

fn signer() -> MacKeypair {
    MacKeypair::from_key([0x42u8; 32])
}

fn donate_schema() -> TableSchema {
    TableSchema::new(
        "donate",
        vec![
            Column::new("donor", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// Builds an `nblocks`-long chain (schema in block 0, two inserts per
/// block), creates the layered index on `amount`, and freezes every
/// index family into checkpoints at the full height.
fn build_chain(dir: &Path, nblocks: u64) {
    let _ = std::fs::remove_dir_all(dir);
    let store = Arc::new(
        BlockStore::open(
            dir,
            StoreConfig {
                sync_writes: false,
                ..StoreConfig::default()
            },
        )
        .expect("open bench store"),
    );
    let ledger = Ledger::new(store, signer()).expect("open ledger");
    let schema = donate_schema();
    let mut tid = 1u64;
    for seq in 0..nblocks {
        let ts = 50_000 + seq;
        let mut txs = Vec::new();
        if seq == 0 {
            txs.push(SchemaManager::schema_transaction(&schema, ts, SENDER));
        }
        for i in 0..2u64 {
            txs.push(Transaction::new(
                ts,
                SENDER,
                "donate",
                vec![
                    Value::str(format!("donor-{seq}-{i}")),
                    Value::decimal(((seq * 2 + i) % KEY_SPACE) as i64),
                ],
            ));
        }
        for tx in &mut txs {
            tx.tid = tid;
            tid += 1;
        }
        ledger
            .append_ordered(OrderedBlock {
                seq,
                timestamp_ms: ts,
                txs,
            })
            .expect("append bench block");
    }
    ledger
        .create_layered_index(&schema, "amount", None)
        .expect("create layered index");
    let published = ledger.checkpoint_indexes().expect("checkpoint indexes");
    assert!(published > 0, "no checkpoints published");
}

fn store_config(cache_blocks: usize) -> StoreConfig {
    StoreConfig {
        sync_writes: false,
        index_cache_blocks: Some(cache_blocks),
        ..StoreConfig::default()
    }
}

/// Opens the ledger and returns it with the recorded open time (the
/// `IoStats::open_millis` satellite — what `Ledger::new` itself
/// measured, checkpoint load + tail replay included).
fn open_ledger(dir: &Path, cache_blocks: usize) -> (Arc<BlockStore>, Ledger, u64) {
    let store = Arc::new(BlockStore::open(dir, store_config(cache_blocks)).expect("reopen store"));
    let opened = Instant::now();
    let ledger = Ledger::new(Arc::clone(&store), signer()).expect("reopen ledger");
    let recorded = store.stats.open_millis.load(Ordering::Relaxed);
    // Sub-millisecond opens round to 0; fall back to the measured wall
    // time so flatness ratios stay finite.
    let open_ms = recorded.max(opened.elapsed().as_millis() as u64).max(1);
    (store, ledger, open_ms)
}

/// Runs `probes` point queries through the layered path, paging the
/// frozen index's level-1 blocks through the bounded cache.
fn probe(ledger: &Ledger, probes: u64) -> u64 {
    let schema = donate_schema();
    let exec = Executor::new(ledger, None);
    let start = Instant::now();
    let mut rows = 0usize;
    for k in 0..probes {
        let key = (k * 7 + 1) % KEY_SPACE;
        let plan = LogicalPlan::Query {
            predicates: vec![BoundPredicate {
                column: schema.resolve("amount").expect("amount column"),
                kind: BoundPredicateKind::Compare(CompareOp::Eq, Value::decimal(key as i64)),
            }],
            schema: schema.clone(),
            projection: vec![],
            window: None,
        };
        rows += exec
            .execute(&plan, Strategy::Layered)
            .expect("layered probe")
            .rows
            .len();
    }
    assert!(rows > 0, "probe workload matched nothing");
    (start.elapsed().as_micros() / u128::from(probes.max(1))) as u64
}

struct Row {
    blocks: u64,
    checkpoint: &'static str,
    cache_blocks: usize,
    open_ms: u64,
    mean_us_per_probe: u64,
    resident_index_bytes: usize,
    cache_resident_blocks: usize,
    cache_resident_bytes: usize,
    cache_hits: u64,
    cache_misses: u64,
}

fn index_resident(c: &mut Criterion) {
    let sw = sweep();
    let mut rows: Vec<Row> = Vec::new();

    let mut group = c.benchmark_group("index_resident");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200));
    for &nblocks in sw.chain_lengths {
        let dir = std::env::temp_dir().join(format!(
            "sebdb-bench-indexresident-n{nblocks}-{}",
            std::process::id()
        ));
        build_chain(&dir, nblocks);

        if !smoke() {
            group.bench_function(BenchmarkId::new("open_checkpointed", nblocks), |b| {
                b.iter(|| open_ledger(&dir, CACHE_BLOCKS[0]))
            });
        }

        // Checkpointed opens across the cache-capacity sweep, each
        // followed by the probe workload that pages the frozen index.
        for cache_blocks in CACHE_BLOCKS {
            let (store, ledger, open_ms) = open_ledger(&dir, cache_blocks);
            ledger
                .create_layered_index(&donate_schema(), "amount", None)
                .expect("reattach layered index");
            store.stats.reset();
            let mean_us_per_probe = probe(&ledger, sw.probes);
            let (cache_hits, cache_misses) = store.stats.index_cache_counts();
            rows.push(Row {
                blocks: nblocks,
                checkpoint: "on",
                cache_blocks,
                open_ms,
                mean_us_per_probe,
                resident_index_bytes: ledger.index_memory_bytes(),
                cache_resident_blocks: store.index_cache().resident_blocks(),
                cache_resident_bytes: store.index_cache().resident_bytes(),
                cache_hits,
                cache_misses,
            });
        }

        // The no-checkpoint reference: drop the checkpoint directory so
        // the open replays the whole chain (linear in `nblocks`).
        let _ = std::fs::remove_dir_all(dir.join(sebdb_storage::indexseg::INDEX_CHECKPOINT_DIR));
        let (store, ledger, open_ms) = open_ledger(&dir, CACHE_BLOCKS[0]);
        rows.push(Row {
            blocks: nblocks,
            checkpoint: "off",
            cache_blocks: CACHE_BLOCKS[0],
            open_ms,
            mean_us_per_probe: 0,
            resident_index_bytes: ledger.index_memory_bytes(),
            cache_resident_blocks: store.index_cache().resident_blocks(),
            cache_resident_bytes: store.index_cache().resident_bytes(),
            cache_hits: 0,
            cache_misses: 0,
        });

        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();

    write_json(&rows);
}

fn write_json(rows: &[Row]) {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut entries = String::new();
    for r in rows {
        entries.push_str(&format!(
            "    {{\"blocks\": {}, \"checkpoint\": \"{}\", \"cache_blocks\": {}, \
             \"open_ms\": {}, \"mean_us_per_probe\": {}, \"resident_index_bytes\": {}, \
             \"cache_resident_blocks\": {}, \"cache_resident_bytes\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}}},\n",
            r.blocks,
            r.checkpoint,
            r.cache_blocks,
            r.open_ms,
            r.mean_us_per_probe,
            r.resident_index_bytes,
            r.cache_resident_blocks,
            r.cache_resident_bytes,
            r.cache_hits,
            r.cache_misses
        ));
    }
    entries.pop();
    entries.pop();
    let body = format!(
        "{{\n  \"bench\": \"index_resident\",\n  \"cpus\": {cpus},\n  \
         \"note\": \"ledger open time vs chain length with (checkpoint=on) and \
         without (checkpoint=off) on-disk index checkpoints, plus resident index \
         bytes after a layered probe workload across index-block cache capacities \
         (cache_blocks=0 is unbounded, the cache=inf reference). Checkpointed opens \
         load the fence-pointer top level and replay only the tail, so open_ms \
         stays flat as blocks grow; checkpoint=off replays every block. Each cache \
         miss pays one seek + one disk-block transfer — Eq. 3's per-block transfer \
         term applied to the index itself — so cache_resident_bytes is bounded by \
         capacity where the unbounded reference grows with the blocks touched\",\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = if smoke() {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_indexresident_smoke.json"
        )
    } else {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_indexresident.json"
        )
    };
    std::fs::write(path, body).expect("write BENCH_indexresident.json");
    eprintln!("wrote {path}");
}

criterion_group!(benches, index_resident);
criterion_main!(benches);
