//! Criterion bench for Fig. 7: write path through the consensus
//! engines. Criterion measures one submit→commit round-trip; the
//! multi-client throughput sweep lives in the `figures` binary
//! (`figures fig7`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sebdb_consensus::tendermint::TendermintConfig;
use sebdb_consensus::traits::now_ms;
use sebdb_consensus::{
    BatchConfig, Consensus, KafkaOrderer, PbftConfig, PbftEngine, TendermintEngine,
};
use sebdb_crypto::sig::KeyId;
use sebdb_types::{Transaction, Value};
use std::sync::Arc;
use std::time::Duration;

fn tx(i: i64) -> Transaction {
    Transaction::new(
        now_ms(),
        KeyId([1; 8]),
        "donate",
        vec![Value::str("bench"), Value::str("edu"), Value::decimal(i)],
    )
}

fn commit_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_commit_roundtrip");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    let quick = BatchConfig {
        max_txs: 1,
        timeout_ms: 5,
    };

    let engines: Vec<(&str, Arc<dyn Consensus>)> = vec![
        ("kafka", KafkaOrderer::start(quick)),
        (
            "pbft",
            PbftEngine::start(PbftConfig {
                batch: quick,
                ..PbftConfig::default()
            }),
        ),
        (
            "tendermint",
            TendermintEngine::start(TendermintConfig {
                batch: quick,
                step_timeout: Duration::from_millis(50),
                ..TendermintConfig::default()
            }),
        ),
    ];
    for (name, engine) in &engines {
        let _sink = engine.subscribe();
        let mut i = 0i64;
        group.bench_function(BenchmarkId::new("submit_commit", *name), |b| {
            b.iter(|| {
                i += 1;
                engine
                    .submit(tx(i))
                    .recv_timeout(Duration::from_secs(10))
                    .unwrap()
                    .unwrap()
            })
        });
    }
    group.finish();
    for (_, engine) in engines {
        engine.shutdown();
    }
}

criterion_group!(benches, commit_roundtrip);
criterion_main!(benches);
