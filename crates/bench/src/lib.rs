//! # sebdb-bench
//!
//! **BChainBench** — the paper's mini benchmark for blockchain
//! databases (§VII-A): the 7-table donation [`schema`] (Fig. 6), the
//! uniform/Gaussian [`datagen`] ("time dimension" and "data
//! distribution in attributes"), the Q1–Q7 [`workload`] (Table II),
//! and [`metrics`] for figure-style output. The `figures` binary
//! regenerates every figure of §VII; the Criterion benches under
//! `benches/` cover the same experiments for statistical timing.

#![warn(missing_docs)]

pub mod datagen;
pub mod figures;
pub mod metrics;
pub mod schema;
pub mod workload;
