//! The figure harness: regenerates every table/figure of §VII.
//!
//! ```text
//! cargo run -p sebdb-bench --release --bin figures            # all figures
//! cargo run -p sebdb-bench --release --bin figures -- fig8    # one figure
//! cargo run -p sebdb-bench --release --bin figures -- all smoke
//! ```

use sebdb_bench::figures::{run_figures, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = match args.get(1).map(String::as_str) {
        Some("smoke") => Scale::smoke(),
        _ => Scale::default_run(),
    };
    print!("{}", run_figures(which, &scale));
}
