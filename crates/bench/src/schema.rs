//! The BChainBench donation schema (§VII-A, Fig. 6).
//!
//! Three on-chain tables — `donate`, `transfer`, `distribute` — and
//! four off-chain tables holding participants' private data:
//! `donorinfo` (charity), `doneeinfo` (school), `childreninfo`
//! (welfare), `customer` (nursing home).

use sebdb_types::{Column, DataType, TableSchema};

/// `Donate(donor, project, amount)`.
pub fn donate() -> TableSchema {
    TableSchema::new(
        "donate",
        vec![
            Column::new("donor", DataType::Str),
            Column::new("project", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// `Transfer(project, donor, organization, amount)`.
pub fn transfer() -> TableSchema {
    TableSchema::new(
        "transfer",
        vec![
            Column::new("project", DataType::Str),
            Column::new("donor", DataType::Str),
            Column::new("organization", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// `Distribute(project, donor, organization, donee, amount)`.
pub fn distribute() -> TableSchema {
    TableSchema::new(
        "distribute",
        vec![
            Column::new("project", DataType::Str),
            Column::new("donor", DataType::Str),
            Column::new("organization", DataType::Str),
            Column::new("donee", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// All on-chain schemas.
pub fn onchain_schemas() -> Vec<TableSchema> {
    vec![donate(), transfer(), distribute()]
}

/// Off-chain `DonorInfo(donor, name, contact)` — maintained by the
/// charity.
pub fn donorinfo_columns() -> Vec<Column> {
    vec![
        Column::new("donor", DataType::Str),
        Column::new("name", DataType::Str),
        Column::new("contact", DataType::Str),
    ]
}

/// Off-chain `DoneeInfo(donee, income, family_size)` — maintained by a
/// school.
pub fn doneeinfo_columns() -> Vec<Column> {
    vec![
        Column::new("donee", DataType::Str),
        Column::new("income", DataType::Decimal),
        Column::new("family_size", DataType::Int),
    ]
}

/// Off-chain `ChildrenInfo(child, age, guardian)` — maintained by the
/// welfare organization.
pub fn childreninfo_columns() -> Vec<Column> {
    vec![
        Column::new("child", DataType::Str),
        Column::new("age", DataType::Int),
        Column::new("guardian", DataType::Str),
    ]
}

/// Off-chain `Customer(customer, age, room)` — maintained by the
/// nursing home.
pub fn customer_columns() -> Vec<Column> {
    vec![
        Column::new("customer", DataType::Str),
        Column::new("age", DataType::Int),
        Column::new("room", DataType::Str),
    ]
}

/// Creates all four off-chain tables in `db`.
pub fn create_offchain_tables(db: &sebdb_offchain::OffchainDb) {
    db.create_table("donorinfo", donorinfo_columns()).unwrap();
    db.create_table("doneeinfo", doneeinfo_columns()).unwrap();
    db.create_table("childreninfo", childreninfo_columns())
        .unwrap();
    db.create_table("customer", customer_columns()).unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_tables_total() {
        assert_eq!(onchain_schemas().len(), 3);
        let off = [
            donorinfo_columns(),
            doneeinfo_columns(),
            childreninfo_columns(),
            customer_columns(),
        ];
        assert_eq!(off.len(), 4);
    }

    #[test]
    fn offchain_tables_create() {
        let db = sebdb_offchain::OffchainDb::new();
        create_offchain_tables(&db);
        let db = std::sync::Arc::new(db);
        assert!(db.connect().count("doneeinfo").is_ok());
        assert!(db.connect().count("customer").is_ok());
    }

    #[test]
    fn schemas_resolve_benchmark_columns() {
        assert!(donate().resolve("amount").is_ok());
        assert!(transfer().resolve("organization").is_ok());
        assert!(distribute().resolve("donee").is_ok());
    }
}
