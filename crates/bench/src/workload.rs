//! The BChainBench workload (§VII-A, Table II): queries Q1–Q7 plus
//! runners that execute them against a [`TestBed`] under a chosen
//! strategy, and the multi-client write driver for Fig. 7.

use crate::datagen::{TestBed, HIT_HI, HIT_LO, ORG1};
use sebdb::{QueryResult, Strategy};
use sebdb_consensus::traits::now_ms;
use sebdb_consensus::{Consensus, OrderedBlock};
use sebdb_crypto::sig::KeyId;
use sebdb_sql::{BoundPredicate, BoundPredicateKind, CompareOp, LogicalPlan};
use sebdb_types::{Timestamp, Transaction, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Q1: write path.
pub const Q1: &str = "INSERT INTO donate VALUES(?,?,?);";
/// Q2: one-dimension tracking.
pub const Q2: &str = r#"TRACE OPERATOR = "org1";"#;
/// Q3: two-dimension tracking in a window.
pub const Q3: &str = r#"TRACE [?, ?] OPERATOR = "org1", OPERATION = "transfer";"#;
/// Q4: range query.
pub const Q4: &str = "SELECT * FROM donate WHERE amount BETWEEN ? AND ?;";
/// Q5: on-chain join.
pub const Q5: &str =
    "SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization;";
/// Q6: on-off-chain join.
pub const Q6: &str =
    "SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee;";
/// Q7: block lookup.
pub const Q7: &str = "GET BLOCK ID=?;";

/// All benchmark queries, in order.
pub const ALL: [&str; 7] = [Q1, Q2, Q3, Q4, Q5, Q6, Q7];

/// Builds the trace plan for Q2/Q3 with the operator already resolved
/// to its sender id (the node layer normally does this via its
/// registry).
pub fn trace_plan(
    operator: Option<KeyId>,
    operation: Option<&str>,
    window: Option<(Timestamp, Timestamp)>,
) -> LogicalPlan {
    LogicalPlan::Trace {
        window,
        operator: operator.map(|k| Value::Bytes(k.as_bytes().to_vec())),
        operation: operation.map(|s| s.to_ascii_lowercase()),
    }
}

/// Runs Q2 on a tracking bed.
pub fn run_q2(bed: &TestBed, strategy: Strategy) -> QueryResult {
    let plan = trace_plan(Some(ORG1), None, None);
    bed.executor().execute(&plan, strategy).expect("q2")
}

/// Runs Q3 on a two-dimension bed with the given window.
pub fn run_q3(
    bed: &TestBed,
    window: Option<(Timestamp, Timestamp)>,
    operator: bool,
    operation: bool,
    strategy: Strategy,
) -> QueryResult {
    let plan = trace_plan(
        operator.then_some(ORG1),
        operation.then_some("transfer"),
        window,
    );
    bed.executor().execute(&plan, strategy).expect("q3")
}

/// Runs Q4 over the reserved hit band on a range bed.
pub fn run_q4(bed: &TestBed, strategy: Strategy) -> QueryResult {
    let schema = crate::schema::donate();
    let plan = LogicalPlan::Query {
        predicates: vec![BoundPredicate {
            column: schema.resolve("amount").unwrap(),
            kind: BoundPredicateKind::Between(Value::decimal(HIT_LO), Value::decimal(HIT_HI)),
        }],
        schema,
        projection: vec![],
        window: None,
    };
    bed.executor().execute(&plan, strategy).expect("q4")
}

/// Runs Q5 on a join bed.
pub fn run_q5(bed: &TestBed, strategy: Strategy) -> QueryResult {
    let left = crate::schema::transfer();
    let right = crate::schema::distribute();
    let plan = LogicalPlan::OnChainJoin {
        left_col: left.resolve("organization").unwrap(),
        right_col: right.resolve("organization").unwrap(),
        left,
        right,
        window: None,
    };
    bed.executor().execute(&plan, strategy).expect("q5")
}

/// Runs Q6 on an on-off bed.
pub fn run_q6(bed: &TestBed, strategy: Strategy) -> QueryResult {
    let on = crate::schema::distribute();
    let plan = LogicalPlan::OnOffJoin {
        on_col: on.resolve("donee").unwrap(),
        on_table: on,
        off_table: "doneeinfo".into(),
        off_col: 0,
        off_columns: crate::schema::doneeinfo_columns(),
        window: None,
    };
    bed.executor().execute(&plan, strategy).expect("q6")
}

/// Runs Q7 for a given block id.
pub fn run_q7(bed: &TestBed, bid: u64) -> QueryResult {
    let plan = LogicalPlan::GetBlock(sebdb_sql::BoundBlockSelector::ById(bid));
    bed.executor().execute(&plan, Strategy::Auto).expect("q7")
}

/// A Q4-style bound predicate over the hit band (for ALI runs).
pub fn q4_key_predicate() -> sebdb_index::KeyPredicate {
    sebdb_index::KeyPredicate::Range(Value::decimal(HIT_LO), Value::decimal(HIT_HI))
}

/// The equality predicate tracking queries push into the ALI on
/// `sen_id`.
pub fn q2_key_predicate() -> sebdb_index::KeyPredicate {
    sebdb_index::KeyPredicate::Eq(Value::Bytes(ORG1.as_bytes().to_vec()))
}

/// Suppress an unused-import lint for CompareOp re-export kept for
/// workload extensions.
const _: Option<CompareOp> = None;

/// Result of a Fig. 7 write run.
#[derive(Debug, Clone, Copy)]
pub struct WriteRunStats {
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Mean client-observed commit latency.
    pub mean_latency_ms: f64,
    /// Transactions committed.
    pub committed: usize,
}

/// Fig. 7's client model: each of `clients` threads sends a
/// transaction, waits for its commit acknowledgement, then sends the
/// next, `txs_per_client` times (§VII-B).
pub fn run_write_benchmark(
    engine: Arc<dyn Consensus>,
    clients: usize,
    txs_per_client: usize,
) -> WriteRunStats {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = Arc::clone(&engine);
            sebdb_parallel::spawn_service(&format!("bench-client-{c}"), move || {
                let mut total_latency = Duration::ZERO;
                let mut committed = 0usize;
                for i in 0..txs_per_client {
                    let tx = Transaction::new(
                        now_ms(),
                        KeyId([(c % 250) as u8 + 1; 8]),
                        "donate",
                        vec![
                            Value::str(format!("client-{c}")),
                            Value::str("education"),
                            Value::decimal((i % 1000) as i64 + 1),
                        ],
                    );
                    let sent = Instant::now();
                    let ack = engine.submit(tx);
                    match ack.recv_timeout(Duration::from_secs(30)) {
                        Ok(Ok(_)) => {
                            total_latency += sent.elapsed();
                            committed += 1;
                        }
                        _ => break,
                    }
                }
                (total_latency, committed)
            })
        })
        .collect();
    let mut committed = 0usize;
    let mut latency = Duration::ZERO;
    for h in handles {
        let (l, c) = h.join().expect("client thread");
        latency += l;
        committed += c;
    }
    let elapsed = start.elapsed().as_secs_f64();
    WriteRunStats {
        throughput_tps: committed as f64 / elapsed.max(1e-9),
        mean_latency_ms: if committed > 0 {
            latency.as_secs_f64() * 1000.0 / committed as f64
        } else {
            f64::NAN
        },
        committed,
    }
}

/// Drains `engine`'s ordered stream into a sink so blocks don't queue
/// unboundedly during write benches. Returns a stopper.
pub fn drain_blocks(engine: &Arc<dyn Consensus>) -> crossbeam::channel::Receiver<OrderedBlock> {
    engine.subscribe()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{
        join_bed, onoff_bed, range_bed, tracking2_bed, tracking_bed, Placement, TestBed,
    };

    #[test]
    fn q2_all_strategies_agree() {
        let bed = tracking_bed(8, 12, 20, Placement::Uniform, 1);
        let scan = run_q2(&bed, Strategy::Scan);
        let bitmap = run_q2(&bed, Strategy::Bitmap);
        let layered = run_q2(&bed, Strategy::Layered);
        assert_eq!(scan.len(), 20);
        assert_eq!(bitmap.len(), 20);
        assert_eq!(layered.len(), 20);
    }

    #[test]
    fn q3_window_and_dimensions() {
        let bed = tracking2_bed(10, 10, 30, 30, 12, Placement::Uniform, 2);
        let all = run_q3(&bed, None, true, true, Strategy::Layered);
        assert_eq!(all.len(), 12);
        // A window covering only the first half of the chain.
        let (s, e) = TestBed::window_covering_blocks(0, 4);
        let half = run_q3(&bed, Some((s, e)), true, true, Strategy::Layered);
        assert!(half.len() < 12 && !half.is_empty(), "got {}", half.len());
        // One dimension only.
        let org1_all = run_q3(&bed, None, true, false, Strategy::Layered);
        assert_eq!(org1_all.len(), 30);
    }

    #[test]
    fn q4_all_strategies_agree() {
        let bed = range_bed(8, 15, 21, Placement::gaussian(), 3);
        for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
            let r = run_q4(&bed, strat);
            assert_eq!(r.len(), 21, "{strat:?}");
        }
    }

    #[test]
    fn q5_all_strategies_agree() {
        let bed = join_bed(6, 10, 14, Placement::Uniform, 4);
        for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
            let r = run_q5(&bed, strat);
            assert_eq!(r.len(), 14, "{strat:?}");
        }
    }

    #[test]
    fn q6_all_strategies_agree() {
        let bed = onoff_bed(6, 10, 9, 20, Placement::Uniform, 5);
        for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Layered] {
            let r = run_q6(&bed, strat);
            assert_eq!(r.len(), 9, "{strat:?}");
        }
    }

    #[test]
    fn q7_returns_header_row() {
        let bed = tracking_bed(5, 8, 5, Placement::Uniform, 6);
        let r = run_q7(&bed, 3);
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert!(run_q7(&bed, 99).is_empty());
    }

    #[test]
    fn layered_reads_fewer_blocks_than_scan() {
        let bed = range_bed(20, 20, 10, Placement::gaussian(), 7);
        bed.ledger.store().stats.reset();
        run_q4(&bed, Strategy::Scan);
        let scan_reads = bed.ledger.store().stats.snapshot().0;
        bed.ledger.store().stats.reset();
        run_q4(&bed, Strategy::Layered);
        let layered_reads = bed.ledger.store().stats.snapshot().0;
        assert!(
            layered_reads < scan_reads,
            "layered {layered_reads} vs scan {scan_reads}"
        );
    }
}
