//! BChainBench data generation (§VII-A).
//!
//! "We implement a data generator to simulate real scenario from two
//! dimensions, including time dimension and the dimension of data
//! distribution in attributes. … This data generator supports uniform
//! and Gaussian distribution of transactions."
//!
//! Each experiment gets a [`TestBed`]: an in-memory ledger populated
//! with `blocks × txs_per_block` transactions, the *hit* transactions
//! (those a query will return) placed across blocks per the selected
//! [`Placement`], plus the off-chain tables and the layered/ALI
//! indexes the workload needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sebdb::{Executor, Ledger, SchemaManager};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_offchain::{OffchainConnection, OffchainDb};
use sebdb_storage::BlockStore;
use sebdb_types::{Transaction, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// How hit transactions are spread over blocks.
#[derive(Debug, Clone, Copy)]
pub enum Placement {
    /// Evenly across all blocks.
    Uniform,
    /// Normally around the middle block ("mean equals to the middle of
    /// block\[chain\] and variance set to 20", §VII-A).
    Gaussian {
        /// Standard deviation in blocks.
        std_blocks: f64,
    },
}

impl Placement {
    /// The paper's Gaussian setting.
    pub fn gaussian() -> Placement {
        Placement::Gaussian { std_blocks: 20.0 }
    }

    /// Short label used in figure output (U/G).
    pub fn label(&self) -> &'static str {
        match self {
            Placement::Uniform => "U",
            Placement::Gaussian { .. } => "G",
        }
    }
}

/// Distributes `hits` over `blocks` buckets: returns hits-per-block.
pub fn place_hits(blocks: u64, hits: usize, placement: Placement, rng: &mut StdRng) -> Vec<usize> {
    let mut per_block = vec![0usize; blocks as usize];
    match placement {
        Placement::Uniform => {
            for i in 0..hits {
                per_block[i % blocks as usize] += 1;
            }
        }
        Placement::Gaussian { std_blocks } => {
            let mean = blocks as f64 / 2.0;
            for _ in 0..hits {
                // Box–Muller.
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen());
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let b = (mean + z * std_blocks)
                    .round()
                    .clamp(0.0, blocks as f64 - 1.0) as usize;
                per_block[b] += 1;
            }
        }
    }
    per_block
}

/// Benchmark amounts: filler donations fall in `[1, FILLER_MAX)` while
/// range-query hits live in the reserved `[HIT_LO, HIT_HI]` band, so
/// result sizes are exact.
pub const FILLER_MAX: i64 = 10_000;
/// Lower bound of the hit band (whole currency units).
pub const HIT_LO: i64 = 100_000;
/// Upper bound of the hit band.
pub const HIT_HI: i64 = 110_000;

/// The well-known benchmark operator (the paper's `org1`).
pub const ORG1: KeyId = KeyId([0xA1; 8]);

/// A populated single-node environment for read benchmarks (reads
/// don't need consensus — blocks are appended directly).
pub struct TestBed {
    /// The chain + indexes.
    pub ledger: Arc<Ledger>,
    /// Schema catalog.
    pub schemas: Arc<SchemaManager>,
    /// Off-chain database.
    pub offdb: Arc<OffchainDb>,
    /// Off-chain connection.
    pub conn: OffchainConnection,
    /// Named operators (org1, org2, …).
    pub orgs: HashMap<String, KeyId>,
    /// Expected result size of the experiment's target query.
    pub expected_hits: usize,
    next_tid: u64,
}

impl TestBed {
    fn empty() -> TestBed {
        let offdb = Arc::new(OffchainDb::new());
        crate::schema::create_offchain_tables(&offdb);
        let conn = offdb.connect();
        let schemas = Arc::new(SchemaManager::new(Some(conn.clone())));
        for s in crate::schema::onchain_schemas() {
            schemas.register(s).unwrap();
        }
        let ledger = Arc::new(
            Ledger::new(
                Arc::new(BlockStore::in_memory()),
                MacKeypair::from_key([0xBE; 32]),
            )
            .unwrap(),
        );
        let mut orgs = HashMap::new();
        orgs.insert("org1".to_string(), ORG1);
        for i in 2..=8u8 {
            orgs.insert(format!("org{i}"), KeyId([i; 8]));
        }
        TestBed {
            ledger,
            schemas,
            offdb,
            conn,
            orgs,
            expected_hits: 0,
            next_tid: 1,
        }
    }

    /// An executor over this bed.
    pub fn executor(&self) -> Executor<'_> {
        Executor::new(&self.ledger, Some(&self.conn))
    }

    /// Timestamp range of block `b`: txs get `b*1000 ..= b*1000+999`,
    /// the block itself `(b+1)*1000`.
    pub fn window_covering_blocks(lo: u64, hi: u64) -> (u64, u64) {
        (lo * 1000, hi * 1000 + 999)
    }

    fn tx(
        &mut self,
        block: u64,
        slot: usize,
        sender: KeyId,
        tname: &str,
        values: Vec<Value>,
    ) -> Transaction {
        let mut t = Transaction::new(block * 1000 + slot as u64, sender, tname, values);
        t.tid = self.next_tid;
        self.next_tid += 1;
        // Size stand-in for a real signature (32-byte MAC + tag byte).
        t.sig = vec![0u8; 33];
        t
    }

    fn append_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        let base = self.ledger.height();
        for (i, txs) in blocks.into_iter().enumerate() {
            let seq = base + i as u64;
            self.ledger
                .append_ordered(OrderedBlock {
                    seq,
                    timestamp_ms: (seq + 1) * 1000,
                    txs,
                })
                .unwrap();
        }
    }

    fn filler_tx(&mut self, block: u64, slot: usize, rng: &mut StdRng) -> Transaction {
        // Fillers rotate senders org2..org8 and the three tables.
        let sender = KeyId([2 + (rng.gen::<u8>() % 7); 8]);
        let amount = Value::decimal(rng.gen_range(1..FILLER_MAX));
        match rng.gen_range(0..3u8) {
            0 => self.tx(
                block,
                slot,
                sender,
                "donate",
                vec![
                    Value::str(format!("donor-{}", rng.gen_range(0..1000))),
                    Value::str("education"),
                    amount,
                ],
            ),
            1 => self.tx(
                block,
                slot,
                sender,
                "transfer",
                vec![
                    Value::str("education"),
                    Value::str(format!("donor-{}", rng.gen_range(0..1000))),
                    Value::str(format!("filler-org-{}", self.next_tid)),
                    amount,
                ],
            ),
            _ => self.tx(
                block,
                slot,
                sender,
                "distribute",
                vec![
                    Value::str("education"),
                    Value::str(format!("donor-{}", rng.gen_range(0..1000))),
                    Value::str(format!("filler-org-{}", self.next_tid)),
                    Value::str(format!("nobody-{}", self.next_tid)),
                    amount,
                ],
            ),
        }
    }
}

/// Bed for Q2 (one-dimension tracking): `hits` transactions sent by
/// `org1`, placed per `placement`, in a chain of `blocks ×
/// txs_per_block`.
pub fn tracking_bed(
    blocks: u64,
    txs_per_block: usize,
    hits: usize,
    placement: Placement,
    seed: u64,
) -> TestBed {
    let mut bed = TestBed::empty();
    let mut rng = StdRng::seed_from_u64(seed);
    let per_block = place_hits(blocks, hits, placement, &mut rng);
    let mut chain = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        let hit_count = per_block[b as usize];
        let mut txs = Vec::with_capacity(txs_per_block.max(hit_count));
        for slot in 0..hit_count {
            let amount = Value::decimal(rng.gen_range(1..FILLER_MAX));
            let t = bed.tx(
                b,
                slot,
                ORG1,
                "donate",
                vec![Value::str("org1-donor"), Value::str("education"), amount],
            );
            txs.push(t);
        }
        for slot in hit_count..txs_per_block.max(hit_count) {
            let t = bed.filler_tx(b, slot, &mut rng);
            txs.push(t);
        }
        chain.push(txs);
    }
    bed.append_blocks(chain);
    bed.expected_hits = hits;
    bed
}

/// Bed for Q3 (two-dimension tracking): `org1_total` org1 transactions
/// of which `overlap` are `transfer` (the results); additionally
/// `transfer_total - overlap` transfers from other senders.
pub fn tracking2_bed(
    blocks: u64,
    txs_per_block: usize,
    org1_total: usize,
    transfer_total: usize,
    overlap: usize,
    placement: Placement,
    seed: u64,
) -> TestBed {
    assert!(overlap <= org1_total && overlap <= transfer_total);
    let mut bed = TestBed::empty();
    let mut rng = StdRng::seed_from_u64(seed);
    let hits = place_hits(blocks, overlap, placement, &mut rng);
    let org1_only = place_hits(blocks, org1_total - overlap, placement, &mut rng);
    let transfer_only = place_hits(blocks, transfer_total - overlap, placement, &mut rng);
    let mut chain = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        let mut txs = Vec::new();
        let mut slot = 0;
        for _ in 0..hits[b as usize] {
            let t = bed.tx(
                b,
                slot,
                ORG1,
                "transfer",
                vec![
                    Value::str("education"),
                    Value::str("donor"),
                    Value::str("school1"),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        for _ in 0..org1_only[b as usize] {
            let t = bed.tx(
                b,
                slot,
                ORG1,
                "donate",
                vec![
                    Value::str("donor"),
                    Value::str("education"),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        for _ in 0..transfer_only[b as usize] {
            let sender = KeyId([2 + (rng.gen::<u8>() % 7); 8]);
            let t = bed.tx(
                b,
                slot,
                sender,
                "transfer",
                vec![
                    Value::str("education"),
                    Value::str("donor"),
                    Value::str("school2"),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        while slot < txs_per_block {
            let t = bed.filler_tx(b, slot, &mut rng);
            txs.push(t);
            slot += 1;
        }
        chain.push(txs);
    }
    bed.append_blocks(chain);
    bed.expected_hits = overlap;
    bed
}

/// Bed for Q4 (range query on `donate.amount`): `hits` donations in
/// the reserved `[HIT_LO, HIT_HI]` band, fillers below it; creates the
/// layered index (and ALI) on `donate.amount`.
pub fn range_bed(
    blocks: u64,
    txs_per_block: usize,
    hits: usize,
    placement: Placement,
    seed: u64,
) -> TestBed {
    let mut bed = TestBed::empty();
    let mut rng = StdRng::seed_from_u64(seed);
    let per_block = place_hits(blocks, hits, placement, &mut rng);
    let mut chain = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        let hit_count = per_block[b as usize];
        let mut txs = Vec::with_capacity(txs_per_block.max(hit_count));
        for slot in 0..hit_count {
            let amount = Value::decimal(rng.gen_range(HIT_LO..=HIT_HI));
            let t = bed.tx(
                b,
                slot,
                KeyId([2; 8]),
                "donate",
                vec![Value::str("donor"), Value::str("education"), amount],
            );
            txs.push(t);
        }
        for slot in hit_count..txs_per_block.max(hit_count) {
            // Range fillers are all donations (the paper's Q4 dataset
            // is 10 000 donate transactions), amounts below the band.
            let amount = Value::decimal(rng.gen_range(1..FILLER_MAX));
            let t = bed.tx(
                b,
                slot,
                KeyId([3; 8]),
                "donate",
                vec![Value::str("donor"), Value::str("education"), amount],
            );
            txs.push(t);
        }
        chain.push(txs);
    }
    bed.append_blocks(chain);
    // Histogram sample spanning both filler and hit bands.
    let sample: Vec<i64> = (0..FILLER_MAX)
        .step_by(16)
        .chain((HIT_LO..=HIT_HI).step_by(64))
        .map(|v| Value::decimal(v).numeric_rank().unwrap())
        .collect();
    bed.ledger
        .create_layered_index(&crate::schema::donate(), "amount", Some(sample))
        .unwrap();
    bed.expected_hits = hits;
    bed
}

/// Bed for Q5 (on-chain join `transfer ⋈ distribute ON organization`):
/// `pairs` shared organization values appearing once on each side, so
/// the join result has exactly `pairs` rows. Indexes both join
/// columns.
pub fn join_bed(
    blocks: u64,
    txs_per_block: usize,
    pairs: usize,
    placement: Placement,
    seed: u64,
) -> TestBed {
    let mut bed = TestBed::empty();
    let mut rng = StdRng::seed_from_u64(seed);
    let left = place_hits(blocks, pairs, placement, &mut rng);
    let right = place_hits(blocks, pairs, placement, &mut rng);
    let mut left_next = 0usize;
    let mut right_next = 0usize;
    let mut chain = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        let mut txs = Vec::new();
        let mut slot = 0;
        for _ in 0..left[b as usize] {
            let org = format!("shared-org-{left_next}");
            left_next += 1;
            let t = bed.tx(
                b,
                slot,
                ORG1,
                "transfer",
                vec![
                    Value::str("education"),
                    Value::str("donor"),
                    Value::Str(org),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        for _ in 0..right[b as usize] {
            let org = format!("shared-org-{right_next}");
            right_next += 1;
            let t = bed.tx(
                b,
                slot,
                KeyId([4; 8]),
                "distribute",
                vec![
                    Value::str("education"),
                    Value::str("donor"),
                    Value::Str(org),
                    Value::str("donee"),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        while slot < txs_per_block {
            let t = bed.filler_tx(b, slot, &mut rng);
            txs.push(t);
            slot += 1;
        }
        chain.push(txs);
    }
    bed.append_blocks(chain);
    bed.ledger
        .create_layered_index(&crate::schema::transfer(), "organization", None)
        .unwrap();
    bed.ledger
        .create_layered_index(&crate::schema::distribute(), "organization", None)
        .unwrap();
    bed.expected_hits = pairs;
    bed
}

/// Bed for Q6 (on-off join `distribute ⋈ doneeinfo ON donee`):
/// `pairs` matching donees, plus `off_extra` off-chain rows that match
/// nothing. Indexes `distribute.donee`.
pub fn onoff_bed(
    blocks: u64,
    txs_per_block: usize,
    pairs: usize,
    off_extra: usize,
    placement: Placement,
    seed: u64,
) -> TestBed {
    let mut bed = TestBed::empty();
    let mut rng = StdRng::seed_from_u64(seed);
    let per_block = place_hits(blocks, pairs, placement, &mut rng);
    let mut donee_next = 0usize;
    let mut chain = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        let mut txs = Vec::new();
        let mut slot = 0;
        for _ in 0..per_block[b as usize] {
            let donee = format!("donee-{donee_next}");
            donee_next += 1;
            let t = bed.tx(
                b,
                slot,
                KeyId([4; 8]),
                "distribute",
                vec![
                    Value::str("education"),
                    Value::str("donor"),
                    Value::str("school1"),
                    Value::Str(donee),
                    Value::decimal(rng.gen_range(1..FILLER_MAX)),
                ],
            );
            txs.push(t);
            slot += 1;
        }
        while slot < txs_per_block {
            let t = bed.filler_tx(b, slot, &mut rng);
            txs.push(t);
            slot += 1;
        }
        chain.push(txs);
    }
    bed.append_blocks(chain);
    for i in 0..pairs {
        bed.conn
            .insert(
                "doneeinfo",
                vec![
                    Value::str(format!("donee-{i}")),
                    Value::decimal(rng.gen_range(100..2000)),
                    Value::Int(rng.gen_range(1..8)),
                ],
            )
            .unwrap();
    }
    for i in 0..off_extra {
        bed.conn
            .insert(
                "doneeinfo",
                vec![
                    Value::str(format!("unmatched-{i}")),
                    Value::decimal(rng.gen_range(100..2000)),
                    Value::Int(rng.gen_range(1..8)),
                ],
            )
            .unwrap();
    }
    bed.conn.create_index("doneeinfo", "donee").unwrap();
    bed.ledger
        .create_layered_index(&crate::schema::distribute(), "donee", None)
        .unwrap();
    bed.expected_hits = pairs;
    bed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_placement_spreads_evenly() {
        let mut rng = StdRng::seed_from_u64(1);
        let per = place_hits(10, 100, Placement::Uniform, &mut rng);
        assert!(per.iter().all(|&c| c == 10));
    }

    #[test]
    fn gaussian_placement_concentrates() {
        let mut rng = StdRng::seed_from_u64(1);
        let per = place_hits(100, 1000, Placement::Gaussian { std_blocks: 5.0 }, &mut rng);
        let middle: usize = per[40..60].iter().sum();
        assert!(middle > 900, "middle got {middle}");
        assert_eq!(per.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn tracking_bed_has_exact_hits() {
        let bed = tracking_bed(10, 20, 37, Placement::Uniform, 7);
        assert_eq!(bed.ledger.height(), 10);
        // Count org1 transactions by scanning.
        let mut count = 0;
        for b in 0..10 {
            let block = bed.ledger.read_block(b).unwrap();
            count += block
                .transactions
                .iter()
                .filter(|t| t.sender == ORG1)
                .count();
        }
        assert_eq!(count, 37);
    }

    #[test]
    fn range_bed_hits_in_band() {
        let bed = range_bed(8, 16, 25, Placement::gaussian(), 3);
        let mut in_band = 0;
        for b in 0..8 {
            let block = bed.ledger.read_block(b).unwrap();
            for t in &block.transactions {
                if t.tname == "donate" {
                    if let Some(Value::Decimal(d)) = t.get(sebdb_types::ColumnRef::App(2)) {
                        if d >= Value::decimal(HIT_LO).numeric_rank().unwrap() {
                            in_band += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(in_band, 25);
    }

    #[test]
    fn join_bed_unique_pairs() {
        let bed = join_bed(6, 12, 15, Placement::Uniform, 9);
        assert_eq!(bed.expected_hits, 15);
        assert_eq!(bed.ledger.height(), 6);
    }

    #[test]
    fn onoff_bed_offchain_rows() {
        let bed = onoff_bed(5, 10, 12, 30, Placement::Uniform, 11);
        assert_eq!(bed.conn.count("doneeinfo").unwrap(), 42);
    }

    #[test]
    fn tids_strictly_increase_across_blocks() {
        let bed = tracking_bed(5, 10, 10, Placement::Uniform, 2);
        let mut last = 0;
        for b in 0..5 {
            let block = bed.ledger.read_block(b).unwrap();
            for t in &block.transactions {
                assert!(t.tid > last);
                last = t.tid;
            }
        }
    }
}
