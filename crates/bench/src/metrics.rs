//! Measurement helpers and figure-style output.

use std::time::{Duration, Instant};

/// Times a closure, returning (result, elapsed).
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Times `f` over `iters` runs after one warmup, returning the mean.
pub fn timed_mean<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    let _ = f(); // warmup
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        let _ = f();
    }
    start.elapsed() / iters.max(1) as u32
}

/// One series of a figure: a labelled list of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. "LU" = layered/uniform).
    pub label: String,
    /// Points in x order.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl ToString, y: f64) {
        self.points.push((x.to_string(), y));
    }
}

/// A figure: a title, an x-axis name, a y-axis name, and series.
#[derive(Debug, Clone)]
pub struct Figure {
    /// E.g. "Fig. 8 — Tracking, varying blockchain size".
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Renders the figure as an aligned text table (x values as rows,
    /// one column per series).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        if self.series.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let xs: Vec<&String> = self.series[0].points.iter().map(|(x, _)| x).collect();
        let mut header = vec![format!("{} \\ {}", self.x_label, self.y_label)];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let mut rows: Vec<Vec<String>> = vec![header];
        for (i, x) in xs.iter().enumerate() {
            let mut row = vec![(*x).clone()];
            for s in &self.series {
                row.push(match s.points.get(i) {
                    Some((_, y)) => format_value(*y),
                    None => "-".to_string(),
                });
            }
            rows.push(row);
        }
        let widths: Vec<usize> = (0..rows[0].len())
            .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        for row in rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn figure_renders_aligned_table() {
        let mut fig = Figure::new("Fig. X — test", "blocks", "ms");
        let mut su = Series::new("SU");
        su.push(500, 12.5);
        su.push(1000, 24.9);
        let mut lu = Series::new("LU");
        lu.push(500, 1.2);
        lu.push(1000, 1.3);
        fig.add(su);
        fig.add(lu);
        let text = fig.render();
        assert!(text.contains("Fig. X"));
        assert!(text.contains("SU"));
        assert!(text.contains("500"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(12345.6), "12346");
        assert_eq!(format_value(42.42), "42.4");
        assert_eq!(format_value(0.5), "0.500");
        assert_eq!(format_value(f64::NAN), "-");
    }
}
