//! Regenerates every figure of §VII.
//!
//! Each `figN` function builds the experiment's dataset(s), runs the
//! contenders, and returns [`Figure`]s whose series mirror the paper's
//! legends (SU/SG/BU/BG/LU/LG, SI/TI, ALI vs Basic, SEBDB vs ChainSQL,
//! block vs transaction cache). Absolute numbers differ from the
//! paper's testbed (see DESIGN.md §5 — parameters are scaled ~20× down
//! for a single core); the *shapes* are the reproduction target and
//! EXPERIMENTS.md records both.

use crate::datagen::{
    join_bed, onoff_bed, range_bed, tracking2_bed, tracking_bed, Placement, TestBed, ORG1,
};
use crate::metrics::{timed, timed_mean, Figure, Series};
use crate::workload::{
    q2_key_predicate, q4_key_predicate, run_q2, run_q3, run_q4, run_q5, run_q6, run_q7,
    run_write_benchmark,
};
use sebdb::{serve_authenticated_query, serve_auxiliary_digest, Strategy, ThinClient};
use sebdb_baseline::ChainSqlBaseline;
use sebdb_consensus::tendermint::TendermintConfig;
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer, TendermintEngine};
use sebdb_index::KeyPredicate;
use sebdb_types::Codec;
use std::sync::Arc;
use std::time::Duration;

/// Experiment scale knobs.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Chain sizes swept by the "varying blockchain size" figures.
    pub blocks: Vec<u64>,
    /// Transactions per block.
    pub txs_per_block: usize,
    /// Result size when held fixed.
    pub fixed_hits: usize,
    /// Result sizes swept by the "varying result size" figures.
    pub result_sizes: Vec<usize>,
    /// Client counts for the write benchmark.
    pub client_counts: Vec<usize>,
    /// Transactions per client in the write benchmark.
    pub txs_per_client: usize,
    /// Repetitions per timing point.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny scale for smoke tests (seconds total).
    pub fn smoke() -> Scale {
        Scale {
            blocks: vec![10, 20],
            txs_per_block: 20,
            fixed_hits: 40,
            result_sizes: vec![20, 40],
            client_counts: vec![1, 2],
            txs_per_client: 10,
            iters: 1,
            seed: 42,
        }
    }

    /// Default run: the paper's sweeps scaled ~20× down (DESIGN.md §5).
    /// Minutes per figure on one core.
    pub fn default_run() -> Scale {
        Scale {
            blocks: vec![25, 50, 75, 100, 125],            // paper: 500..2500
            txs_per_block: 100,                            // paper: ~14k (4 MB / 300 B)
            fixed_hits: 500,                               // paper: 10 000
            result_sizes: vec![100, 250, 500, 1000, 2000], // paper: 1k..10k / 2k..1.25M
            client_counts: vec![1, 4, 16, 64, 128, 256],   // paper: up to 480
            txs_per_client: 50,                            // paper: 100
            iters: 3,
            seed: 42,
        }
    }

    fn gaussian(&self) -> Placement {
        // Keep the Gaussian hump inside the smallest chain swept.
        Placement::Gaussian {
            std_blocks: (self.blocks.first().copied().unwrap_or(25) as f64 / 5.0).max(2.0),
        }
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

type BedBuilder = dyn Fn(u64, usize, usize, Placement, u64) -> TestBed;

/// Sweeps chain size for one query under all six strategy×placement
/// series — the common shape of Figs. 8, 11, 13, 15.
fn sweep_blocks(
    scale: &Scale,
    title: &str,
    build: &BedBuilder,
    run: &dyn Fn(&TestBed, Strategy) -> usize,
) -> Figure {
    let mut fig = Figure::new(title, "blocks", "latency ms");
    let combos = [
        ("SU", Strategy::Scan, Placement::Uniform),
        ("SG", Strategy::Scan, scale.gaussian()),
        ("BU", Strategy::Bitmap, Placement::Uniform),
        ("BG", Strategy::Bitmap, scale.gaussian()),
        ("LU", Strategy::Layered, Placement::Uniform),
        ("LG", Strategy::Layered, scale.gaussian()),
    ];
    for (label, strategy, placement) in combos {
        let mut series = Series::new(label);
        for &blocks in &scale.blocks {
            let bed = build(
                blocks,
                scale.txs_per_block,
                scale.fixed_hits,
                placement,
                scale.seed,
            );
            let d = timed_mean(scale.iters, || run(&bed, strategy));
            series.push(blocks, ms(d));
        }
        fig.add(series);
    }
    fig
}

/// Sweeps result size at a fixed chain size — Figs. 9, 12, 14, 16.
fn sweep_results(
    scale: &Scale,
    title: &str,
    build: &BedBuilder,
    run: &dyn Fn(&TestBed, Strategy) -> usize,
) -> Figure {
    let blocks = scale.blocks[scale.blocks.len() / 2];
    let mut fig = Figure::new(title, "result size", "latency ms");
    let combos = [
        ("SU", Strategy::Scan, Placement::Uniform),
        ("SG", Strategy::Scan, scale.gaussian()),
        ("BU", Strategy::Bitmap, Placement::Uniform),
        ("BG", Strategy::Bitmap, scale.gaussian()),
        ("LU", Strategy::Layered, Placement::Uniform),
        ("LG", Strategy::Layered, scale.gaussian()),
    ];
    for (label, strategy, placement) in combos {
        let mut series = Series::new(label);
        for &hits in &scale.result_sizes {
            let bed = build(blocks, scale.txs_per_block, hits, placement, scale.seed);
            let d = timed_mean(scale.iters, || run(&bed, strategy));
            series.push(hits, ms(d));
        }
        fig.add(series);
    }
    fig
}

/// Fig. 7 — write throughput and response time vs client count, Kafka
/// vs Tendermint.
pub fn fig7(scale: &Scale) -> Vec<Figure> {
    let mut tput = Figure::new(
        "Fig. 7a — Write throughput (tx/s) vs clients",
        "clients",
        "tx/s",
    );
    let mut lat = Figure::new("Fig. 7b — Write response time vs clients", "clients", "ms");
    type EngineFactory = Box<dyn Fn() -> Arc<dyn Consensus>>;
    let engines: Vec<(&str, EngineFactory)> = vec![
        (
            "kafka",
            Box::new(|| -> Arc<dyn Consensus> {
                KafkaOrderer::start(BatchConfig {
                    max_txs: 200,
                    timeout_ms: 200,
                })
            }),
        ),
        (
            "tendermint",
            Box::new(|| -> Arc<dyn Consensus> {
                TendermintEngine::start(TendermintConfig {
                    batch: BatchConfig {
                        max_txs: 10_000,
                        timeout_ms: 200,
                    },
                    step_timeout: Duration::from_millis(100),
                    // The serial CheckTx cost that bounds Tendermint's
                    // throughput (§VII-B).
                    checktx_cost_us: 1000,
                    ..TendermintConfig::default()
                })
            }),
        ),
    ];
    for (label, make) in engines {
        let mut ts = Series::new(label);
        let mut ls = Series::new(label);
        for &clients in &scale.client_counts {
            let engine = make();
            // A sink so ordered blocks don't pile up.
            let _sink = engine.subscribe();
            let stats = run_write_benchmark(Arc::clone(&engine), clients, scale.txs_per_client);
            engine.shutdown();
            ts.push(clients, stats.throughput_tps);
            ls.push(clients, stats.mean_latency_ms);
        }
        tput.add(ts);
        lat.add(ls);
    }
    vec![tput, lat]
}

/// Fig. 8 — Q2 tracking, varying blockchain size.
pub fn fig8(scale: &Scale) -> Vec<Figure> {
    vec![sweep_blocks(
        scale,
        "Fig. 8 — Tracking (Q2), varying blockchain size",
        &|b, t, h, p, s| tracking_bed(b, t, h, p, s),
        &|bed, strat| run_q2(bed, strat).len(),
    )]
}

/// Fig. 9 — Q2 tracking, varying result size.
pub fn fig9(scale: &Scale) -> Vec<Figure> {
    vec![sweep_results(
        scale,
        "Fig. 9 — Tracking (Q2), varying result size",
        &|b, t, h, p, s| tracking_bed(b, t, h, p, s),
        &|bed, strat| run_q2(bed, strat).len(),
    )]
}

/// Fig. 10 — Q3 two-dimension tracking across shrinking time windows
/// TW₁..TW₅, single index (SI) vs two indexes (TI).
pub fn fig10(scale: &Scale) -> Vec<Figure> {
    let blocks = *scale.blocks.last().unwrap();
    let org1_total = scale.fixed_hits * 2;
    let transfer_total = scale.fixed_hits * 2;
    let overlap = scale.fixed_hits / 2;
    let mut fig = Figure::new(
        "Fig. 10 — Two-dimension tracking (Q3) across time windows",
        "window",
        "latency ms",
    );
    for (label, placement, two_idx) in [
        ("SIU", Placement::Uniform, false),
        ("SIG", scale.gaussian(), false),
        ("TIU", Placement::Uniform, true),
        ("TIG", scale.gaussian(), true),
    ] {
        let bed = tracking2_bed(
            blocks,
            scale.txs_per_block,
            org1_total,
            transfer_total,
            overlap,
            placement,
            scale.seed,
        );
        let mut series = Series::new(label);
        for i in 1..=5u32 {
            // TW_i covers the last blocks/2^{i-1} blocks (paper: start
            // at block 1000 − 1000/2^{i-1}).
            let span = (blocks / 2u64.pow(i - 1)).max(1);
            let (s, e) = TestBed::window_covering_blocks(blocks - span, blocks - 1);
            let d = timed_mean(scale.iters, || {
                if two_idx {
                    run_q3(&bed, Some((s, e)), true, true, Strategy::Layered).len()
                } else {
                    // Single index: track by operator via the index,
                    // filter the operation dimension afterwards.
                    let rows = run_q3(&bed, Some((s, e)), true, false, Strategy::Layered);
                    rows.rows
                        .iter()
                        .filter(|r| r[4] == sebdb_types::Value::str("transfer"))
                        .count()
                }
            });
            series.push(format!("TW{i}"), ms(d));
        }
        fig.add(series);
    }
    vec![fig]
}

/// Fig. 11 — Q4 range query, varying blockchain size.
pub fn fig11(scale: &Scale) -> Vec<Figure> {
    vec![sweep_blocks(
        scale,
        "Fig. 11 — Range query (Q4), varying blockchain size",
        &|b, t, h, p, s| range_bed(b, t, h, p, s),
        &|bed, strat| run_q4(bed, strat).len(),
    )]
}

/// Fig. 12 — Q4 range query, varying result size.
pub fn fig12(scale: &Scale) -> Vec<Figure> {
    vec![sweep_results(
        scale,
        "Fig. 12 — Range query (Q4), varying result size",
        &|b, t, h, p, s| range_bed(b, t, h, p, s),
        &|bed, strat| run_q4(bed, strat).len(),
    )]
}

/// Fig. 13 — Q5 on-chain join, varying blockchain size.
pub fn fig13(scale: &Scale) -> Vec<Figure> {
    vec![sweep_blocks(
        scale,
        "Fig. 13 — On-chain join (Q5), varying blockchain size",
        &|b, t, h, p, s| join_bed(b, t, h, p, s),
        &|bed, strat| run_q5(bed, strat).len(),
    )]
}

/// Fig. 14 — Q5 on-chain join, varying result size.
pub fn fig14(scale: &Scale) -> Vec<Figure> {
    vec![sweep_results(
        scale,
        "Fig. 14 — On-chain join (Q5), varying result size",
        &|b, t, h, p, s| join_bed(b, t, h, p, s),
        &|bed, strat| run_q5(bed, strat).len(),
    )]
}

/// Fig. 15 — Q6 on-off-chain join, varying blockchain size.
pub fn fig15(scale: &Scale) -> Vec<Figure> {
    vec![sweep_blocks(
        scale,
        "Fig. 15 — On-off-chain join (Q6), varying blockchain size",
        &|b, t, h, p, s| onoff_bed(b, t, h, h, p, s),
        &|bed, strat| run_q6(bed, strat).len(),
    )]
}

/// Fig. 16 — Q6 on-off-chain join, varying result size.
pub fn fig16(scale: &Scale) -> Vec<Figure> {
    vec![sweep_results(
        scale,
        "Fig. 16 — On-off-chain join (Q6), varying result size",
        &|b, t, h, p, s| onoff_bed(b, t, h, h, p, s),
        &|bed, strat| run_q6(bed, strat).len(),
    )]
}

fn auth_beds(scale: &Scale, blocks: u64) -> (TestBed, TestBed) {
    let q2_bed = tracking_bed(
        blocks,
        scale.txs_per_block,
        scale.fixed_hits,
        Placement::Uniform,
        scale.seed,
    );
    let q4_bed = range_bed(
        blocks,
        scale.txs_per_block,
        scale.fixed_hits,
        Placement::Uniform,
        scale.seed,
    );
    (q2_bed, q4_bed)
}

struct AuthPoint {
    vo_bytes: f64,
    server_ms: f64,
    client_ms: f64,
}

fn run_ali_point(
    bed: &TestBed,
    table: Option<&str>,
    column: &str,
    pred: &KeyPredicate,
    iters: usize,
) -> AuthPoint {
    let (response, server) = timed(|| {
        serve_authenticated_query(&bed.ledger, table, column, pred, None).expect("ALI exists")
    });
    let digest = serve_auxiliary_digest(&bed.ledger, table, column, pred, None, response.vo.height)
        .expect("ALI exists");
    let client = ThinClient::new();
    let verify = timed_mean(iters, || {
        client
            .verify(pred, &response, &[digest, digest], 2)
            .expect("verification")
    });
    AuthPoint {
        vo_bytes: response.vo_bytes() as f64,
        server_ms: ms(server),
        client_ms: ms(verify),
    }
}

fn run_basic_point(
    bed: &TestBed,
    keep: &dyn Fn(&sebdb_types::Transaction) -> bool,
    iters: usize,
) -> AuthPoint {
    let mut client = ThinClient::new();
    client.sync_headers(&bed.ledger);
    // Server ships every block whole.
    let (blocks, server) = timed(|| {
        (0..bed.ledger.height())
            .map(|b| (*bed.ledger.read_block(b).unwrap()).clone())
            .collect::<Vec<_>>()
    });
    let vo_bytes: usize = blocks.iter().map(|b| b.to_bytes().len()).sum();
    let verify = timed_mean(iters, || {
        client
            .verify_blocks_basic(&blocks, keep)
            .expect("roots match")
    });
    AuthPoint {
        vo_bytes: vo_bytes as f64,
        server_ms: ms(server),
        client_ms: ms(verify),
    }
}

/// Figs. 17/18/19 — authenticated queries: VO size, server time,
/// client time; ALI vs the ship-all-blocks basic approach, for Q2 and
/// Q4.
pub fn fig17_18_19(scale: &Scale) -> Vec<Figure> {
    let mut vo = Figure::new("Fig. 17 — VO size (bytes)", "blocks", "bytes");
    let mut server = Figure::new("Fig. 18 — Server-side time", "blocks", "ms");
    let mut client = Figure::new("Fig. 19 — Client-side time", "blocks", "ms");
    let mut data: Vec<(String, Vec<AuthPoint>)> = vec![
        ("ALI-Q2".into(), vec![]),
        ("ALI-Q4".into(), vec![]),
        ("Basic-Q2".into(), vec![]),
        ("Basic-Q4".into(), vec![]),
    ];
    for &blocks in &scale.blocks {
        let (q2_bed, q4_bed) = auth_beds(scale, blocks);
        data[0].1.push(run_ali_point(
            &q2_bed,
            None,
            "sen_id",
            &q2_key_predicate(),
            scale.iters,
        ));
        data[1].1.push(run_ali_point(
            &q4_bed,
            Some("donate"),
            "amount",
            &q4_key_predicate(),
            scale.iters,
        ));
        data[2]
            .1
            .push(run_basic_point(&q2_bed, &|t| t.sender == ORG1, scale.iters));
        let band = q4_key_predicate();
        data[3].1.push(run_basic_point(
            &q4_bed,
            &move |t| {
                t.tname == "donate"
                    && t.get(sebdb_types::ColumnRef::App(2))
                        .map(|v| band.matches(&v))
                        .unwrap_or(false)
            },
            scale.iters,
        ));
    }
    for (label, points) in data {
        let mut vs = Series::new(label.clone());
        let mut ss = Series::new(label.clone());
        let mut cs = Series::new(label);
        for (i, p) in points.iter().enumerate() {
            let x = scale.blocks[i];
            vs.push(x, p.vo_bytes);
            ss.push(x, p.server_ms);
            cs.push(x, p.client_ms);
        }
        vo.add(vs);
        server.add(ss);
        client.add(cs);
    }
    vec![vo, server, client]
}

/// Fig. 20 — one-dimension tracking, SEBDB vs the ChainSQL-style
/// baseline, varying blockchain size (both indexed ⇒ both flat).
pub fn fig20(scale: &Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "Fig. 20 — One-dimension tracking: SEBDB vs ChainSQL",
        "blocks",
        "latency ms",
    );
    let mut sebdb = Series::new("SEBDB");
    let mut chainsql = Series::new("ChainSQL");
    for &blocks in &scale.blocks {
        let bed = tracking_bed(
            blocks,
            scale.txs_per_block,
            scale.fixed_hits,
            Placement::Uniform,
            scale.seed,
        );
        let d = timed_mean(scale.iters, || run_q2(&bed, Strategy::Layered).len());
        sebdb.push(blocks, ms(d));

        let baseline = ChainSqlBaseline::new();
        for b in 0..blocks {
            baseline.ingest_block(&bed.ledger.read_block(b).unwrap());
        }
        let d = timed_mean(scale.iters, || baseline.track_operator(&ORG1).len());
        chainsql.push(blocks, ms(d));
    }
    fig.add(sebdb);
    fig.add(chainsql);
    vec![fig]
}

/// Fig. 21 — two-dimension tracking, SEBDB vs ChainSQL, varying the
/// operator's transaction volume at fixed result size (SEBDB flat,
/// ChainSQL linear).
pub fn fig21(scale: &Scale) -> Vec<Figure> {
    let mut fig = Figure::new(
        "Fig. 21 — Two-dimension tracking: SEBDB vs ChainSQL",
        "org1 txs",
        "latency ms",
    );
    let blocks = *scale.blocks.last().unwrap();
    let result = scale.fixed_hits / 2;
    let volumes: Vec<usize> = (0..5).map(|i| scale.fixed_hits * (1 << i)).collect();
    let mut sebdb = Series::new("SEBDB");
    let mut chainsql = Series::new("ChainSQL");
    for &org1_total in &volumes {
        let bed = tracking2_bed(
            blocks,
            scale.txs_per_block,
            org1_total,
            result * 2,
            result,
            Placement::Uniform,
            scale.seed,
        );
        let d = timed_mean(scale.iters, || {
            run_q3(&bed, None, true, true, Strategy::Layered).len()
        });
        sebdb.push(org1_total, ms(d));

        let baseline = ChainSqlBaseline::new();
        for b in 0..blocks {
            baseline.ingest_block(&bed.ledger.read_block(b).unwrap());
        }
        let d = timed_mean(scale.iters, || {
            baseline.track_operator_operation(&ORG1, "transfer").len()
        });
        chainsql.push(org1_total, ms(d));
    }
    fig.add(sebdb);
    fig.add(chainsql);
    vec![fig]
}

/// Fig. 22 — block cache vs transaction cache across Q2, Q4, Q5, Q6,
/// Q7 (layered plans, warmed caches).
pub fn fig22(scale: &Scale) -> Vec<Figure> {
    let blocks = scale.blocks[scale.blocks.len() / 2];
    let cache_bytes = 64 << 20;
    let mut fig = Figure::new(
        "Fig. 22 — Block cache vs transaction cache",
        "query",
        "total ms (warm, repeated)",
    );
    let mut block_series = Series::new("BlockCache");
    let mut tx_series = Series::new("TxCache");
    let reps = (scale.iters * 10).max(10);

    type Q = (
        &'static str,
        Box<dyn Fn() -> TestBed>,
        Box<dyn Fn(&TestBed) -> usize>,
    );
    let t = scale.txs_per_block;
    let h = scale.fixed_hits;
    let seed = scale.seed;
    let queries: Vec<Q> = vec![
        (
            "Q2",
            Box::new(move || tracking_bed(blocks, t, h, Placement::Uniform, seed)),
            Box::new(|bed: &TestBed| run_q2(bed, Strategy::Layered).len()),
        ),
        (
            "Q4",
            Box::new(move || range_bed(blocks, t, h, Placement::Uniform, seed)),
            Box::new(|bed: &TestBed| run_q4(bed, Strategy::Layered).len()),
        ),
        (
            "Q5",
            Box::new(move || join_bed(blocks, t, h / 2, Placement::Uniform, seed)),
            Box::new(|bed: &TestBed| run_q5(bed, Strategy::Layered).len()),
        ),
        (
            "Q6",
            Box::new(move || onoff_bed(blocks, t, h / 2, h, Placement::Uniform, seed)),
            Box::new(|bed: &TestBed| run_q6(bed, Strategy::Layered).len()),
        ),
        (
            "Q7",
            Box::new(move || tracking_bed(blocks, t, h, Placement::Uniform, seed)),
            Box::new(move |bed: &TestBed| run_q7(bed, blocks / 2).len()),
        ),
    ];
    for (name, build, run) in queries {
        let bed = build();
        bed.ledger.use_block_cache(cache_bytes);
        run(&bed); // warm
        let (_, d) = timed(|| {
            for _ in 0..reps {
                run(&bed);
            }
        });
        block_series.push(name, ms(d));

        bed.ledger.use_tx_cache(cache_bytes);
        run(&bed); // warm
        let (_, d) = timed(|| {
            for _ in 0..reps {
                run(&bed);
            }
        });
        tx_series.push(name, ms(d));
    }
    fig.add(block_series);
    fig.add(tx_series);
    vec![fig]
}

/// Runs one figure by key ("fig7".."fig22"; "fig17"/"fig18"/"fig19"
/// share one runner), or `"all"`. Returns the rendered output.
pub fn run_figures(which: &str, scale: &Scale) -> String {
    type FigRunner = fn(&Scale) -> Vec<Figure>;
    let all: Vec<(&str, FigRunner)> = vec![
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("fig15", fig15),
        ("fig16", fig16),
        ("fig17", fig17_18_19),
        ("fig18", fig17_18_19),
        ("fig19", fig17_18_19),
        ("fig20", fig20),
        ("fig21", fig21),
        ("fig22", fig22),
    ];
    let mut out = String::new();
    let mut ran = std::collections::HashSet::new();
    for (key, f) in all {
        if which != "all" && which != key {
            continue;
        }
        // fig17/18/19 share one runner; don't run it three times.
        if !ran.insert(f as usize) {
            continue;
        }
        for fig in f(scale) {
            out.push_str(&fig.render());
            out.push('\n');
        }
    }
    if out.is_empty() {
        out = format!("unknown figure '{which}' (use fig7..fig22 or all)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig8_shape() {
        let figs = fig8(&Scale::smoke());
        let fig = &figs[0];
        assert_eq!(fig.series.len(), 6);
        assert_eq!(fig.series[0].points.len(), 2);
    }

    #[test]
    fn smoke_fig17_vo_smaller_for_ali() {
        let figs = fig17_18_19(&Scale::smoke());
        let vo = &figs[0];
        let ali = vo.series.iter().find(|s| s.label == "ALI-Q4").unwrap();
        let basic = vo.series.iter().find(|s| s.label == "Basic-Q4").unwrap();
        for (a, b) in ali.points.iter().zip(&basic.points) {
            assert!(a.1 < b.1, "ALI VO {} !< basic {}", a.1, b.1);
        }
    }

    #[test]
    fn smoke_fig10_runs() {
        let out = run_figures("fig10", &Scale::smoke());
        assert!(out.contains("TW1") && out.contains("TIG"));
    }

    #[test]
    fn smoke_fig20_21_run() {
        let out20 = run_figures("fig20", &Scale::smoke());
        assert!(out20.contains("ChainSQL"));
        let out21 = run_figures("fig21", &Scale::smoke());
        assert!(out21.contains("SEBDB"));
    }

    #[test]
    fn smoke_fig22_runs() {
        let out = run_figures("fig22", &Scale::smoke());
        assert!(out.contains("TxCache"));
        assert!(out.contains("Q7"));
    }

    #[test]
    fn unknown_figure_reports() {
        assert!(run_figures("fig99", &Scale::smoke()).contains("unknown"));
    }
}
