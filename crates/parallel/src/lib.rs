//! Data-parallel building blocks for SEBDB's hot paths.
//!
//! The engine parallelizes three things: Merkle tree construction,
//! per-transaction MAC verification on the append path, and
//! block-grouped scan materialization. All of them reduce to a small
//! set of order-preserving primitives over slices, built here on
//! `std::thread::scope` so the crate has zero dependencies.
//!
//! Every primitive degrades to the exact sequential algorithm when the
//! effective thread count is 1 (the default can be overridden with
//! `SEBDB_THREADS` or [`set_max_threads`]), so single-threaded runs
//! reproduce the pre-parallel engine byte for byte.

mod tracked;

pub use tracked::Tracked;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static MAX_THREADS: AtomicUsize = AtomicUsize::new(0); // 0 = uninitialized

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("SEBDB_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Returns the engine-wide worker cap (>= 1).
pub fn max_threads() -> usize {
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Overrides the engine-wide worker cap. `n` is clamped to >= 1.
/// Setting 1 makes every primitive run its sequential fallback.
pub fn set_max_threads(n: usize) {
    MAX_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Workers to use for `len` items given a per-thread floor: no point
/// spinning up a thread for less than `min_per_thread` items.
fn workers_for(len: usize, threads: usize, min_per_thread: usize) -> usize {
    if threads <= 1 || len < 2 * min_per_thread.max(1) {
        return 1;
    }
    threads.min(len / min_per_thread.max(1)).max(1)
}

/// Maps `items` to a new vector, preserving order. Chunks are handed
/// to scoped threads; the result is reassembled in index order so the
/// output is identical to `items.iter().map(f).collect()`.
pub fn par_map<T, U, F>(items: &[T], min_per_thread: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with_threads(items, max_threads(), min_per_thread, f)
}

/// [`par_map`] with an explicit thread count (for tests and benches
/// that must not race on the global cap).
pub fn par_map_with_threads<T, U, F>(
    items: &[T],
    threads: usize,
    min_per_thread: usize,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers_for(items.len(), threads, min_per_thread);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// Maps index ranges `0..len` to per-chunk results. Used when the
/// caller needs slices of an output buffer rather than per-item
/// values. Results come back in chunk order.
pub fn par_chunks<U, F>(len: usize, threads: usize, min_per_thread: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    let workers = workers_for(len, threads, min_per_thread);
    if workers == 1 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(workers);
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let range = start..(start + chunk).min(len);
                scope.spawn(|| f(range))
            })
            .collect();
        for handle in handles {
            out.push(handle.join().expect("parallel chunk worker panicked"));
        }
    });
    out
}

/// Finds the first item (lowest index) for which `f` returns `Some`,
/// matching the sequential scan's answer exactly: every chunk reports
/// its own first hit and the lowest-index hit wins.
pub fn par_find_first<T, U, F>(items: &[T], min_per_thread: usize, f: F) -> Option<(usize, U)>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync,
{
    let workers = workers_for(items.len(), max_threads(), min_per_thread);
    if workers == 1 {
        return items
            .iter()
            .enumerate()
            .find_map(|(i, t)| f(t).map(|u| (i, u)));
    }
    let chunk = items.len().div_ceil(workers);
    let mut first: Option<(usize, U)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                let base = ci * chunk;
                let f = &f;
                scope.spawn(move || {
                    part.iter()
                        .enumerate()
                        .find_map(|(i, t)| f(t).map(|u| (base + i, u)))
                })
            })
            .collect();
        // Chunks arrive in index order, so the first Some is the
        // lowest-index hit.
        for handle in handles {
            let hit = handle.join().expect("parallel find worker panicked");
            if first.is_none() {
                first = hit;
            }
        }
    });
    first
}

/// Runs independent closures concurrently (one thread each beyond the
/// first) and waits for all of them. With a cap of 1 they run in
/// order on the caller's thread.
pub fn par_invoke(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    if max_threads() <= 1 || tasks.len() <= 1 {
        for task in tasks {
            task();
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut iter = tasks.into_iter();
        let first = iter.next();
        let handles: Vec<_> = iter.map(|task| scope.spawn(task)).collect();
        // Run one task on the calling thread instead of parking it.
        if let Some(task) = first {
            task();
        }
        for handle in handles {
            handle.join().expect("parallel task panicked");
        }
    });
}

/// Convenience macro for [`par_invoke`]: `join_all!(|| a(), || b())`.
#[macro_export]
macro_rules! join_all {
    ($($task:expr),+ $(,)?) => {
        $crate::par_invoke(vec![$(Box::new($task)),+])
    };
}

/// Spawns a named long-lived service thread (appliers, consensus
/// replicas, network pumps). This is the one sanctioned way to start
/// an OS thread outside this crate — the repo lint forbids raw
/// `std::thread::spawn` elsewhere, so every service thread passes
/// through here and carries a name that shows up in panic messages
/// and debugger output.
pub fn spawn_service<T, F>(name: &str, f: F) -> std::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(format!("sebdb-{name}"))
        .spawn(f)
        .unwrap_or_else(|e| panic!("failed to spawn service thread '{name}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that mutate the global cap serialize on this lock.
    static CAP_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map_with_threads(&items, threads, 4, |x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_small_input_stays_sequential() {
        let items = [1u32, 2, 3];
        assert_eq!(
            par_map_with_threads(&items, 8, 64, |x| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let parts = par_chunks(103, 4, 8, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_empty() {
        let parts = par_chunks(0, 4, 8, |r| r.len());
        assert_eq!(parts, vec![0]);
    }

    #[test]
    fn find_first_matches_sequential() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(4);
        let items: Vec<u32> = (0..500).collect();
        // Hits at 123 and 400; the scan must report 123.
        let hit = par_find_first(&items, 4, |&x| (x == 123 || x == 400).then_some(x * 2));
        assert_eq!(hit, Some((123, 246)));
        let miss = par_find_first(&items, 4, |&x| (x > 1000).then_some(()));
        assert_eq!(miss, None);
        set_max_threads(1);
    }

    #[test]
    fn invoke_runs_all_tasks() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(4);
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        join_all!(|| *a.lock().unwrap() += 1, || *b.lock().unwrap() += 2);
        assert_eq!(*a.lock().unwrap(), 1);
        assert_eq!(*b.lock().unwrap(), 2);
        set_max_threads(1);
        join_all!(|| *a.lock().unwrap() += 1, || *b.lock().unwrap() += 2);
        assert_eq!(*a.lock().unwrap(), 2);
        assert_eq!(*b.lock().unwrap(), 4);
    }

    #[test]
    fn cap_is_clamped() {
        let _guard = CAP_LOCK.lock().unwrap();
        set_max_threads(0);
        assert_eq!(max_threads(), 1);
        set_max_threads(6);
        assert_eq!(max_threads(), 6);
        set_max_threads(1);
    }
}
