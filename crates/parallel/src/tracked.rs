//! Zero-cost marker for race-detector-tracked shared state.
//!
//! [`Tracked<T>`] is the production twin of `sebdb_model::race::Tracked`:
//! a `#[repr(transparent)]` wrapper that compiles to nothing — same
//! size, same alignment, every accessor an inlined passthrough — but
//! marks a field as *shared mutable state whose synchronisation the
//! model checker proves*. A model of the component wraps the same
//! field in the model `Tracked`, which timestamps every access with
//! the thread's vector clock and fails the run on an unordered
//! conflicting pair, so the model reads like the production code while
//! the production code pays nothing.
//!
//! Usage rules (DESIGN.md §14, abridged): wrap plain shared payloads
//! that a lock, channel, or join edge is supposed to order — cache
//! shard contents under their mutex, the mempool buffer, single-flight
//! slots. Atomics wrapped in `Tracked` (for example the `IoStats`
//! counters in `sebdb-storage`) document *which* atomics are modelled
//! as exempt self-ordering cells rather than lock-protected data.

use std::sync::atomic::{AtomicU64, Ordering};

/// Transparent wrapper marking race-detector-tracked shared state.
/// See the module docs; the model twin is `sebdb_model::race::Tracked`.
#[derive(Default)]
#[repr(transparent)]
pub struct Tracked<T>(T);

impl<T> Tracked<T> {
    /// Wraps `value`. `const` so statics and struct literals work.
    pub const fn new(value: T) -> Tracked<T> {
        Tracked(value)
    }

    pub fn into_inner(self) -> T {
        self.0
    }

    /// An untracked (production) read returning a copy. The model twin
    /// records this access against the thread's vector clock.
    #[inline(always)]
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.0
    }

    /// A write. Takes `&mut self` — in production, exclusive access is
    /// whatever lock guard the caller already holds.
    #[inline(always)]
    pub fn set(&mut self, value: T) {
        self.0 = value;
    }

    /// Borrows the payload (a tracked read in the model).
    #[inline(always)]
    pub fn read(&self) -> &T {
        &self.0
    }

    /// Mutably borrows the payload (a tracked write in the model).
    #[inline(always)]
    pub fn write(&mut self) -> &mut T {
        &mut self.0
    }

    /// Read through a closure — the shape shared with the model twin,
    /// whose closure variant exists because its payload sits behind an
    /// internal mutex.
    #[inline(always)]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.0)
    }

    /// Write through a closure. See [`Self::with`].
    #[inline(always)]
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0)
    }
}

/// Atomic passthrough so counters like `IoStats` keep their call sites
/// (`.load(..)`, `.store(..)`, `.fetch_add(..)`) unchanged when the
/// field type gains the `Tracked` marker. Atomics are self-ordering;
/// the marker documents that the model deliberately exempts them from
/// clock checks (they model monotone observations, not lock-protected
/// state).
impl Tracked<AtomicU64> {
    #[inline(always)]
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    #[inline(always)]
    pub fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order);
    }

    #[inline(always)]
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_add(value, order)
    }

    #[inline(always)]
    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        self.0.fetch_max(value, order)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Tracked<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Clone> Clone for Tracked<T> {
    fn clone(&self) -> Tracked<T> {
        Tracked(self.0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wrapper must be layout-identical to its payload — the
    /// "zero-cost outside model builds" guarantee is a compile-time
    /// fact of `#[repr(transparent)]`, checked here for the payload
    /// shapes production actually wraps.
    #[test]
    fn transparent_layout() {
        use std::mem::{align_of, size_of};
        assert_eq!(size_of::<Tracked<AtomicU64>>(), size_of::<AtomicU64>());
        assert_eq!(align_of::<Tracked<AtomicU64>>(), align_of::<AtomicU64>());
        assert_eq!(size_of::<Tracked<Vec<u64>>>(), size_of::<Vec<u64>>());
        assert_eq!(
            align_of::<Tracked<Option<u64>>>(),
            align_of::<Option<u64>>()
        );
        assert_eq!(size_of::<Tracked<()>>(), 0);
    }

    #[test]
    fn accessors_pass_through() {
        let mut cell = Tracked::new(5u64);
        assert_eq!(cell.get(), 5);
        cell.set(7);
        assert_eq!(*cell.read(), 7);
        *cell.write() += 1;
        assert_eq!(cell.with(|v| v + 1), 9);
        cell.with_mut(|v| *v = 100);
        assert_eq!(cell.into_inner(), 100);
    }

    #[test]
    fn atomic_passthrough() {
        let counter = Tracked::new(AtomicU64::new(0));
        counter.fetch_add(3, Ordering::Relaxed);
        counter.fetch_max(2, Ordering::Relaxed);
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        counter.store(9, Ordering::Relaxed);
        assert_eq!(counter.load(Ordering::Relaxed), 9);
    }
}
