//! Robustness: the lexer/parser must never panic, whatever the input,
//! and parsing is stable under re-rendering for schemas.

use proptest::prelude::*;
use sebdb_sql::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes (as lossy strings) never panic the parser.
    #[test]
    fn parser_never_panics_on_garbage(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// Statement-shaped garbage: keywords with random tails.
    #[test]
    fn parser_never_panics_on_keyword_prefixes(
        kw in prop::sample::select(vec!["SELECT", "INSERT", "CREATE", "TRACE", "GET"]),
        tail in "[ -~]{0,120}",
    ) {
        let _ = parse(&format!("{kw} {tail}"));
    }

    /// Valid SELECTs with random identifiers and literals round-trip
    /// through the parser without error.
    #[test]
    fn well_formed_selects_parse(
        table in "[a-z][a-z0-9_]{0,10}",
        col in "[a-z][a-z0-9_]{0,10}",
        lo in -1000i64..1000,
        len in 0i64..100,
    ) {
        let sql = format!("SELECT * FROM {table} WHERE {col} BETWEEN {lo} AND {}", lo + len);
        let stmt = parse(&sql).expect("well-formed select parses");
        prop_assert_eq!(stmt.param_count(), 0);
    }

    /// Valid INSERTs with string literals containing escapes parse.
    #[test]
    fn inserts_with_escaped_strings_parse(
        table in "[a-z][a-z0-9_]{0,10}",
        text in "[a-zA-Z0-9 _.-]{0,30}",
        n in any::<i32>(),
    ) {
        let sql = format!(r#"INSERT INTO {table} VALUES ("{text}", {n})"#);
        parse(&sql).expect("well-formed insert parses");
    }

    /// Deeply nested-ish predicates (many ANDs) parse linearly.
    #[test]
    fn long_predicate_chains_parse(n in 1usize..40) {
        let preds: Vec<String> = (0..n).map(|i| format!("c{i} = {i}")).collect();
        let sql = format!("SELECT * FROM t WHERE {}", preds.join(" AND "));
        let stmt = parse(&sql).expect("chain parses");
        match stmt {
            sebdb_sql::Statement::Select(s) => prop_assert_eq!(s.predicates.len(), n),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }
}
