//! # sebdb-sql
//!
//! The SQL-like language of SEBDB (§III-A, Table II): a hand-written
//! [`lexer`] and recursive-descent [`parser`] for
//! `CREATE` / `INSERT` / `SELECT` (with `BETWEEN`, joins via
//! `FROM a, b ON …`, `onchain.`/`offchain.` qualifiers and
//! `WINDOW [s, e]` time windows), the blockchain-specific `TRACE` and
//! `GET BLOCK` statements, plus a logical [`plan`](mod@plan)ner that resolves
//! names against a schema catalog and binds `?` parameters.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod plan;

pub use ast::{
    BlockSelector, CompareOp, Expr, JoinClause, SelectStmt, Statement, TableRef, TableSource,
    WherePredicate,
};
pub use lexer::SqlError;
pub use parser::{parse, parse_script};
pub use plan::{
    plan, BoundBlockSelector, BoundPredicate, BoundPredicateKind, Catalog, LogicalPlan, TraceSpec,
};
