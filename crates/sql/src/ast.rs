//! Abstract syntax for the SEBDB SQL-like language.

use sebdb_types::{DataType, Value};

/// A literal or a `?` positional parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// The `i`-th `?` parameter (0-based), bound at execution.
    Param(usize),
}

impl Expr {
    /// Resolves the expression against bound parameters.
    pub fn resolve(&self, params: &[Value]) -> Result<Value, crate::lexer::SqlError> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(i) => params.get(*i).cloned().ok_or_else(|| {
                crate::lexer::SqlError::new(
                    format!("parameter ?{} not bound ({} given)", i + 1, params.len()),
                    0,
                )
            }),
        }
    }
}

/// Comparison operators in `WHERE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One conjunct of a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WherePredicate {
    /// `column <op> expr`.
    Compare {
        /// Column name (unresolved).
        column: String,
        /// Operator.
        op: CompareOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `column BETWEEN lo AND hi`.
    Between {
        /// Column name.
        column: String,
        /// Lower bound (inclusive).
        lo: Expr,
        /// Upper bound (inclusive).
        hi: Expr,
    },
}

impl WherePredicate {
    /// The column this predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            WherePredicate::Compare { column, .. } => column,
            WherePredicate::Between { column, .. } => column,
        }
    }
}

/// Whether a table lives on-chain or in the local RDBMS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableSource {
    /// A blockchain relation (the default).
    #[default]
    OnChain,
    /// A local off-chain RDBMS table.
    OffChain,
}

/// A table reference with its source qualifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// `onchain` / `offchain` qualifier (`onchain` by default).
    pub source: TableSource,
    /// Table name.
    pub name: String,
}

/// `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT COUNT(*)`: return a single count row instead of tuples.
    pub count: bool,
    /// Optional `LIMIT n`.
    pub limit: Option<u64>,
    /// Projected column names; empty = `*`.
    pub projection: Vec<String>,
    /// First (or only) table.
    pub from: TableRef,
    /// Join partner and the `ON left.col = right.col` condition.
    pub join: Option<JoinClause>,
    /// Conjunctive `WHERE` predicates.
    pub predicates: Vec<WherePredicate>,
    /// Optional `[start, end]` time window over transaction timestamps.
    pub window: Option<(Expr, Expr)>,
}

/// `FROM a, b ON a.x = b.y`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The right-hand table.
    pub table: TableRef,
    /// Left join column, written `left_table.col` (table part optional).
    pub left_col: String,
    /// Right join column.
    pub right_col: String,
}

/// Which key `GET BLOCK` looks up by (§IV-B's three basic lookups).
#[derive(Debug, Clone, PartialEq)]
pub enum BlockSelector {
    /// `GET BLOCK ID = ?`
    ById(Expr),
    /// `GET BLOCK TID = ?`
    ByTid(Expr),
    /// `GET BLOCK TIMESTAMP = ?`
    ByTimestamp(Expr),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE <table> (col type, …)`.
    Create {
        /// Table name.
        table: String,
        /// Application-level columns.
        columns: Vec<(String, DataType)>,
    },
    /// `INSERT [INTO] <table> [VALUES] (expr, …)`.
    Insert {
        /// Target table.
        table: String,
        /// Row values.
        values: Vec<Expr>,
    },
    /// `SELECT …`.
    Select(SelectStmt),
    /// `TRACE [start,end] OPERATOR = expr, OPERATION = expr` — the
    /// track-trace operation (§V-A); either dimension may be omitted.
    Trace {
        /// Optional time window.
        window: Option<(Expr, Expr)>,
        /// Who sent the transactions (`SenID` dimension).
        operator: Option<Expr>,
        /// Which transaction type (`Tname` dimension).
        operation: Option<Expr>,
    },
    /// `GET BLOCK …`.
    GetBlock(BlockSelector),
    /// `EXPLAIN <statement>`: plan without executing.
    Explain(Box<Statement>),
}

impl Statement {
    /// Number of `?` parameters in the statement.
    pub fn param_count(&self) -> usize {
        fn expr(e: &Expr, max: &mut usize) {
            if let Expr::Param(i) = e {
                *max = (*max).max(i + 1);
            }
        }
        let mut max = 0;
        match self {
            Statement::Create { .. } => {}
            Statement::Insert { values, .. } => {
                for v in values {
                    expr(v, &mut max);
                }
            }
            Statement::Select(s) => {
                for p in &s.predicates {
                    match p {
                        WherePredicate::Compare { value, .. } => expr(value, &mut max),
                        WherePredicate::Between { lo, hi, .. } => {
                            expr(lo, &mut max);
                            expr(hi, &mut max);
                        }
                    }
                }
                if let Some((a, b)) = &s.window {
                    expr(a, &mut max);
                    expr(b, &mut max);
                }
            }
            Statement::Trace {
                window,
                operator,
                operation,
            } => {
                if let Some((a, b)) = window {
                    expr(a, &mut max);
                    expr(b, &mut max);
                }
                if let Some(o) = operator {
                    expr(o, &mut max);
                }
                if let Some(o) = operation {
                    expr(o, &mut max);
                }
            }
            Statement::GetBlock(sel) => match sel {
                BlockSelector::ById(e)
                | BlockSelector::ByTid(e)
                | BlockSelector::ByTimestamp(e) => expr(e, &mut max),
            },
            Statement::Explain(inner) => return inner.param_count(),
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_resolution() {
        let p = Expr::Param(1);
        let params = vec![Value::Int(1), Value::str("x")];
        assert_eq!(p.resolve(&params).unwrap(), Value::str("x"));
        assert!(Expr::Param(5).resolve(&params).is_err());
        assert_eq!(
            Expr::Literal(Value::Int(9)).resolve(&[]).unwrap(),
            Value::Int(9)
        );
    }

    #[test]
    fn param_count_tracks_max_index() {
        let stmt = Statement::Insert {
            table: "t".into(),
            values: vec![Expr::Param(0), Expr::Literal(Value::Int(1)), Expr::Param(2)],
        };
        assert_eq!(stmt.param_count(), 3);
        let none = Statement::Create {
            table: "t".into(),
            columns: vec![],
        };
        assert_eq!(none.param_count(), 0);
    }
}
