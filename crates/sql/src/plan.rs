//! Logical planning: name resolution, parameter binding, and
//! validation against the schema catalog.
//!
//! The physical access-path decision (scan vs bitmap vs layered index,
//! Eqs. 1–3) is made by the executor in `sebdb` core, where index
//! availability is known; this module produces fully-resolved
//! [`LogicalPlan`]s with every column bound and every literal coerced.

use crate::ast::*;
use crate::lexer::SqlError;
use sebdb_types::{Column, ColumnRef, DataType, TableSchema, Timestamp, Value};

/// What the planner needs to know about existing tables.
pub trait Catalog {
    /// Schema of an on-chain table (transaction type).
    fn onchain_schema(&self, name: &str) -> Option<TableSchema>;
    /// Columns of an off-chain table.
    fn offchain_columns(&self, name: &str) -> Option<Vec<Column>>;
}

/// A resolved comparison against an on-chain column.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    /// The resolved column.
    pub column: ColumnRef,
    /// Operator (`Between` is encoded as `Ge lo` + `Le hi` pair by the
    /// planner when needed; kept intact here).
    pub kind: BoundPredicateKind,
}

/// The shape of a bound predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundPredicateKind {
    /// `col <op> value`.
    Compare(CompareOp, Value),
    /// `col BETWEEN lo AND hi`.
    Between(Value, Value),
}

impl BoundPredicate {
    /// Evaluates against a column-value getter.
    pub fn matches(&self, get: impl Fn(ColumnRef) -> Option<Value>) -> bool {
        let Some(v) = get(self.column) else {
            return false;
        };
        if v == Value::Null {
            return false;
        }
        match &self.kind {
            BoundPredicateKind::Compare(op, rhs) => {
                if *rhs == Value::Null {
                    return false;
                }
                let ord = v.cmp_total(rhs);
                match op {
                    CompareOp::Eq => ord.is_eq(),
                    CompareOp::Ne => ord.is_ne(),
                    CompareOp::Lt => ord.is_lt(),
                    CompareOp::Le => ord.is_le(),
                    CompareOp::Gt => ord.is_gt(),
                    CompareOp::Ge => ord.is_ge(),
                }
            }
            BoundPredicateKind::Between(lo, hi) => v >= *lo && v <= *hi,
        }
    }

    /// If this predicate is servable by a layered index (equality or
    /// closed range), the `(lo, hi)` bounds.
    pub fn index_bounds(&self) -> Option<(Value, Value)> {
        match &self.kind {
            BoundPredicateKind::Compare(CompareOp::Eq, v) => Some((v.clone(), v.clone())),
            BoundPredicateKind::Between(lo, hi) => Some((lo.clone(), hi.clone())),
            _ => None,
        }
    }
}

/// A fully-resolved statement ready for execution.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Create an on-chain table.
    CreateTable(TableSchema),
    /// Insert one validated row into an on-chain table.
    Insert {
        /// Target table (canonical lower-case).
        table: String,
        /// Coerced application-level values.
        row: Vec<Value>,
    },
    /// Single-table on-chain query.
    Query {
        /// Table schema.
        schema: TableSchema,
        /// Projected columns; empty = all (system + application).
        projection: Vec<String>,
        /// Conjunctive predicates.
        predicates: Vec<BoundPredicate>,
        /// Optional time window over `Ts`.
        window: Option<(Timestamp, Timestamp)>,
    },
    /// On-chain equi-join (Algorithm 2).
    OnChainJoin {
        /// Left table schema.
        left: TableSchema,
        /// Right table schema.
        right: TableSchema,
        /// Resolved join column on the left.
        left_col: ColumnRef,
        /// Resolved join column on the right.
        right_col: ColumnRef,
        /// Optional time window.
        window: Option<(Timestamp, Timestamp)>,
    },
    /// On-chain ⋈ off-chain join (Algorithm 3).
    OnOffJoin {
        /// The on-chain side.
        on_table: TableSchema,
        /// Resolved on-chain join column.
        on_col: ColumnRef,
        /// Off-chain table name (canonical lower-case).
        off_table: String,
        /// Off-chain join column position.
        off_col: usize,
        /// Off-chain column metadata (for output headers).
        off_columns: Vec<Column>,
        /// Optional time window (applies to the on-chain side).
        window: Option<(Timestamp, Timestamp)>,
    },
    /// Track-trace (Algorithm 1).
    Trace {
        /// Window over `Ts`.
        window: Option<(Timestamp, Timestamp)>,
        /// Operator dimension: sender id bytes.
        operator: Option<Value>,
        /// Operation dimension: transaction type.
        operation: Option<String>,
    },
    /// Block lookup by id / tid / timestamp.
    GetBlock(BoundBlockSelector),
    /// `EXPLAIN`: describe the inner plan instead of executing it.
    Explain(Box<LogicalPlan>),
    /// Post-processing wrapper: `COUNT(*)` and/or `LIMIT n` over the
    /// inner plan's rows.
    Post {
        /// The wrapped plan.
        input: Box<LogicalPlan>,
        /// Emit a single count row.
        count: bool,
        /// Keep at most this many rows.
        limit: Option<u64>,
    },
}

/// A normalized tracking predicate: the registration and routing key
/// of a materialized `TRACE` view. Strategy-independent — every
/// physical strategy answering the same `(window, operator,
/// operation)` triple produces the same rows in the same chain order,
/// so one spec identifies one result.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceSpec {
    /// Window over `Ts`, inclusive on both ends.
    pub window: Option<(Timestamp, Timestamp)>,
    /// Operator dimension: the sender's 8 id bytes (`SenID`).
    pub operator: Option<[u8; 8]>,
    /// Operation dimension: lowercased transaction type (`Tname`).
    pub operation: Option<String>,
}

impl TraceSpec {
    /// Builds a spec, lowercasing the operation the way the planner
    /// does so equal predicates always compare equal.
    pub fn new(
        window: Option<(Timestamp, Timestamp)>,
        operator: Option<[u8; 8]>,
        operation: Option<&str>,
    ) -> TraceSpec {
        TraceSpec {
            window,
            operator,
            operation: operation.map(|s| s.to_ascii_lowercase()),
        }
    }

    /// Tracking needs at least one dimension (Algorithm 1 has no
    /// "trace everything" walk).
    pub fn is_valid(&self) -> bool {
        self.operator.is_some() || self.operation.is_some()
    }
}

impl LogicalPlan {
    /// The normalized [`TraceSpec`] of a `Trace` plan whose operator
    /// (if any) is already resolved to sender-id bytes — the key an
    /// eligible `TRACE` is routed to a registered view under. `None`
    /// for other plans or for an operator still carrying its name
    /// (the node layer resolves names before execution).
    pub fn trace_spec(&self) -> Option<TraceSpec> {
        match self {
            LogicalPlan::Trace {
                window,
                operator,
                operation,
            } => {
                let operator = match operator {
                    Some(Value::Bytes(b)) if b.len() == 8 => {
                        let mut id = [0u8; 8];
                        id.copy_from_slice(b);
                        Some(id)
                    }
                    Some(_) => return None,
                    None => None,
                };
                Some(TraceSpec::new(*window, operator, operation.as_deref()))
            }
            _ => None,
        }
    }
}

/// Resolved `GET BLOCK` selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundBlockSelector {
    /// By block id.
    ById(u64),
    /// By transaction id.
    ByTid(u64),
    /// By timestamp.
    ByTimestamp(u64),
}

fn as_u64(v: &Value, what: &str) -> Result<u64, SqlError> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::Timestamp(t) => Ok(*t),
        other => Err(SqlError::new(
            format!("{what} must be a non-negative integer, got {other}"),
            0,
        )),
    }
}

fn resolve_window(
    window: &Option<(Expr, Expr)>,
    params: &[Value],
) -> Result<Option<(Timestamp, Timestamp)>, SqlError> {
    match window {
        None => Ok(None),
        Some((a, b)) => {
            let s = as_u64(&a.resolve(params)?, "window start")?;
            let e = as_u64(&b.resolve(params)?, "window end")?;
            if s > e {
                return Err(SqlError::new(format!("empty window [{s}, {e}]"), 0));
            }
            Ok(Some((s, e)))
        }
    }
}

/// Coerces a predicate literal to the column's type so comparisons are
/// homogeneous (e.g. integer literals against decimal columns).
fn coerce_literal(v: Value, ty: DataType) -> Value {
    v.clone().coerce(ty).unwrap_or(v)
}

/// Plans `stmt` with bound `params` against `catalog`.
pub fn plan(
    stmt: &Statement,
    params: &[Value],
    catalog: &dyn Catalog,
) -> Result<LogicalPlan, SqlError> {
    let need = stmt.param_count();
    if params.len() < need {
        return Err(SqlError::new(
            format!("statement needs {need} parameters, {} bound", params.len()),
            0,
        ));
    }
    match stmt {
        Statement::Create { table, columns } => {
            if catalog.onchain_schema(table).is_some() {
                return Err(SqlError::new(format!("table '{table}' already exists"), 0));
            }
            let schema = TableSchema::new(
                table.to_ascii_lowercase(),
                columns
                    .iter()
                    .map(|(n, t)| Column::new(n.clone(), *t))
                    .collect(),
            );
            Ok(LogicalPlan::CreateTable(schema))
        }
        Statement::Insert { table, values } => {
            let schema = catalog
                .onchain_schema(table)
                .ok_or_else(|| SqlError::new(format!("no such table '{table}'"), 0))?;
            let row: Vec<Value> = values
                .iter()
                .map(|e| e.resolve(params))
                .collect::<Result<_, _>>()?;
            let row = schema
                .check_row(row)
                .map_err(|e| SqlError::new(e.to_string(), 0))?;
            Ok(LogicalPlan::Insert {
                table: schema.name.clone(),
                row,
            })
        }
        Statement::Select(s) => plan_select(s, params, catalog),
        Statement::Trace {
            window,
            operator,
            operation,
        } => {
            let operator = match operator {
                Some(e) => Some(match e.resolve(params)? {
                    // Operators are named by string in queries; the
                    // executor maps names to sender ids. Raw id bytes
                    // are accepted too.
                    v @ (Value::Str(_) | Value::Bytes(_)) => v,
                    other => {
                        return Err(SqlError::new(
                            format!("OPERATOR must be a string or id bytes, got {other}"),
                            0,
                        ))
                    }
                }),
                None => None,
            };
            let operation = match operation {
                Some(e) => match e.resolve(params)? {
                    Value::Str(s) => Some(s.to_ascii_lowercase()),
                    other => {
                        return Err(SqlError::new(
                            format!("OPERATION must be a table name string, got {other}"),
                            0,
                        ))
                    }
                },
                None => None,
            };
            Ok(LogicalPlan::Trace {
                window: resolve_window(window, params)?,
                operator,
                operation,
            })
        }
        Statement::Explain(inner) => Ok(LogicalPlan::Explain(Box::new(plan(
            inner, params, catalog,
        )?))),
        Statement::GetBlock(sel) => {
            let bound = match sel {
                BlockSelector::ById(e) => {
                    BoundBlockSelector::ById(as_u64(&e.resolve(params)?, "block id")?)
                }
                BlockSelector::ByTid(e) => {
                    BoundBlockSelector::ByTid(as_u64(&e.resolve(params)?, "tid")?)
                }
                BlockSelector::ByTimestamp(e) => {
                    BoundBlockSelector::ByTimestamp(as_u64(&e.resolve(params)?, "timestamp")?)
                }
            };
            Ok(LogicalPlan::GetBlock(bound))
        }
    }
}

fn bind_predicates(
    schema: &TableSchema,
    predicates: &[WherePredicate],
    params: &[Value],
) -> Result<Vec<BoundPredicate>, SqlError> {
    predicates
        .iter()
        .map(|p| {
            let column = schema
                .resolve(p.column())
                .map_err(|e| SqlError::new(e.to_string(), 0))?;
            let ty = column.data_type(schema);
            let kind = match p {
                WherePredicate::Compare { op, value, .. } => {
                    BoundPredicateKind::Compare(*op, coerce_literal(value.resolve(params)?, ty))
                }
                WherePredicate::Between { lo, hi, .. } => BoundPredicateKind::Between(
                    coerce_literal(lo.resolve(params)?, ty),
                    coerce_literal(hi.resolve(params)?, ty),
                ),
            };
            Ok(BoundPredicate { column, kind })
        })
        .collect()
}

fn plan_select(
    s: &SelectStmt,
    params: &[Value],
    catalog: &dyn Catalog,
) -> Result<LogicalPlan, SqlError> {
    let inner = plan_select_inner(s, params, catalog)?;
    if s.count || s.limit.is_some() {
        Ok(LogicalPlan::Post {
            input: Box::new(inner),
            count: s.count,
            limit: s.limit,
        })
    } else {
        Ok(inner)
    }
}

fn plan_select_inner(
    s: &SelectStmt,
    params: &[Value],
    catalog: &dyn Catalog,
) -> Result<LogicalPlan, SqlError> {
    let window = resolve_window(&s.window, params)?;
    if s.from.source == TableSource::OffChain {
        return Err(SqlError::new(
            "the first FROM table must be on-chain (off-chain tables join via Q6 syntax)",
            0,
        ));
    }
    let left = catalog
        .onchain_schema(&s.from.name)
        .ok_or_else(|| SqlError::new(format!("no such on-chain table '{}'", s.from.name), 0))?;

    match &s.join {
        None => Ok(LogicalPlan::Query {
            predicates: bind_predicates(&left, &s.predicates, params)?,
            projection: s.projection.clone(),
            schema: left,
            window,
        }),
        Some(j) if j.table.source == TableSource::OnChain => {
            let right = catalog.onchain_schema(&j.table.name).ok_or_else(|| {
                SqlError::new(format!("no such on-chain table '{}'", j.table.name), 0)
            })?;
            if !s.predicates.is_empty() {
                return Err(SqlError::new(
                    "WHERE on joins is not supported; filter with a time window",
                    0,
                ));
            }
            let left_col = left
                .resolve(&j.left_col)
                .map_err(|e| SqlError::new(e.to_string(), 0))?;
            let right_col = right
                .resolve(&j.right_col)
                .map_err(|e| SqlError::new(e.to_string(), 0))?;
            Ok(LogicalPlan::OnChainJoin {
                left,
                right,
                left_col,
                right_col,
                window,
            })
        }
        Some(j) => {
            let off_columns = catalog.offchain_columns(&j.table.name).ok_or_else(|| {
                SqlError::new(format!("no such off-chain table '{}'", j.table.name), 0)
            })?;
            let on_col = left
                .resolve(&j.left_col)
                .map_err(|e| SqlError::new(e.to_string(), 0))?;
            let off_col = off_columns
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(&j.right_col))
                .ok_or_else(|| {
                    SqlError::new(
                        format!(
                            "no column '{}' in off-chain '{}'",
                            j.right_col, j.table.name
                        ),
                        0,
                    )
                })?;
            Ok(LogicalPlan::OnOffJoin {
                on_table: left,
                on_col,
                off_table: j.table.name.to_ascii_lowercase(),
                off_col,
                off_columns,
                window,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    struct TestCatalog;

    impl Catalog for TestCatalog {
        fn onchain_schema(&self, name: &str) -> Option<TableSchema> {
            match name.to_ascii_lowercase().as_str() {
                "donate" => Some(TableSchema::new(
                    "donate",
                    vec![
                        Column::new("donor", DataType::Str),
                        Column::new("project", DataType::Str),
                        Column::new("amount", DataType::Decimal),
                    ],
                )),
                "distribute" => Some(TableSchema::new(
                    "distribute",
                    vec![
                        Column::new("project", DataType::Str),
                        Column::new("donee", DataType::Str),
                        Column::new("amount", DataType::Decimal),
                    ],
                )),
                _ => None,
            }
        }

        fn offchain_columns(&self, name: &str) -> Option<Vec<Column>> {
            match name.to_ascii_lowercase().as_str() {
                "doneeinfo" => Some(vec![
                    Column::new("donee", DataType::Str),
                    Column::new("income", DataType::Decimal),
                ]),
                _ => None,
            }
        }
    }

    fn plan_sql(sql: &str, params: &[Value]) -> Result<LogicalPlan, SqlError> {
        plan(&parse(sql).unwrap(), params, &TestCatalog)
    }

    #[test]
    fn plans_insert_with_params_and_coercion() {
        let p = plan_sql(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("Jack"), Value::str("Edu"), Value::Int(100)],
        )
        .unwrap();
        match p {
            LogicalPlan::Insert { table, row } => {
                assert_eq!(table, "donate");
                assert_eq!(row[2], Value::decimal(100)); // Int → Decimal
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_wrong_arity_fails() {
        assert!(plan_sql("INSERT INTO donate VALUES (1, 2)", &[]).is_err());
        assert!(plan_sql("INSERT INTO nosuch VALUES (1)", &[]).is_err());
    }

    #[test]
    fn missing_params_detected() {
        assert!(plan_sql("INSERT INTO donate VALUES (?, ?, ?)", &[Value::Int(1)]).is_err());
    }

    #[test]
    fn plans_range_query_with_bound_column() {
        let p = plan_sql(
            "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
            &[Value::Int(10), Value::Int(20)],
        )
        .unwrap();
        match p {
            LogicalPlan::Query {
                predicates, schema, ..
            } => {
                assert_eq!(schema.name, "donate");
                assert_eq!(predicates.len(), 1);
                assert_eq!(predicates[0].column, ColumnRef::App(2));
                // Int literals coerced to the decimal column type.
                assert_eq!(
                    predicates[0].index_bounds(),
                    Some((Value::decimal(10), Value::decimal(20)))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plans_onchain_join() {
        let p = plan_sql(
            "SELECT * FROM donate, distribute ON donate.project = distribute.project",
            &[],
        )
        .unwrap();
        match p {
            LogicalPlan::OnChainJoin {
                left_col,
                right_col,
                ..
            } => {
                assert_eq!(left_col, ColumnRef::App(1));
                assert_eq!(right_col, ColumnRef::App(0));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plans_onoff_join() {
        let p = plan_sql(
            "SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee",
            &[],
        )
        .unwrap();
        match p {
            LogicalPlan::OnOffJoin {
                on_col,
                off_col,
                off_table,
                ..
            } => {
                assert_eq!(on_col, ColumnRef::App(1));
                assert_eq!(off_col, 0);
                assert_eq!(off_table, "doneeinfo");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plans_trace() {
        let p = plan_sql(
            r#"TRACE [5, 10] OPERATOR = "org1", OPERATION = "Donate""#,
            &[],
        )
        .unwrap();
        assert_eq!(
            p,
            LogicalPlan::Trace {
                window: Some((5, 10)),
                operator: Some(Value::str("org1")),
                operation: Some("donate".into()),
            }
        );
    }

    #[test]
    fn empty_window_rejected() {
        assert!(plan_sql(r#"TRACE [10, 5] OPERATOR = "o""#, &[]).is_err());
    }

    #[test]
    fn plans_get_block() {
        assert_eq!(
            plan_sql("GET BLOCK ID = ?", &[Value::Int(7)]).unwrap(),
            LogicalPlan::GetBlock(BoundBlockSelector::ById(7))
        );
        assert!(plan_sql("GET BLOCK ID = ?", &[Value::str("x")]).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(plan_sql("SELECT * FROM donate WHERE salary = 1", &[]).is_err());
    }

    #[test]
    fn bound_predicate_matching() {
        let p = plan_sql("SELECT * FROM donate WHERE amount BETWEEN 10 AND 20", &[]).unwrap();
        let LogicalPlan::Query { predicates, .. } = p else {
            panic!()
        };
        let pred = &predicates[0];
        assert!(pred.matches(|_| Some(Value::decimal(15))));
        assert!(!pred.matches(|_| Some(Value::decimal(25))));
        assert!(!pred.matches(|_| Some(Value::Null)));
        assert!(!pred.matches(|_| None));
    }

    #[test]
    fn create_duplicate_rejected() {
        assert!(plan_sql("CREATE donate (x int)", &[]).is_err());
        let ok = plan_sql("CREATE transfer (a string, b decimal)", &[]).unwrap();
        match ok {
            LogicalPlan::CreateTable(s) => assert_eq!(s.name, "transfer"),
            other => panic!("{other:?}"),
        }
    }
}
