//! Recursive-descent parser for the SEBDB SQL-like language.
//!
//! Grammar (statements end at `;` or EOF):
//!
//! ```text
//! create  := CREATE [TABLE] ident '(' col type (',' col type)* ')'
//! insert  := INSERT [INTO] ident [VALUES] '(' expr (',' expr)* ')'
//! select  := SELECT (COUNT '(' '*' ')' | proj) FROM tableref
//!            [',' tableref ON qcol '=' qcol]
//!            [WHERE pred (AND pred)*] [WINDOW '[' expr ',' expr ']']
//!            [LIMIT int]
//! trace   := TRACE ['[' expr ',' expr ']']
//!            [OPERATOR '=' expr] [','] [OPERATION '=' expr]
//! get     := GET BLOCK (ID|TID|TIMESTAMP) '=' expr
//! tableref:= [(ONCHAIN|OFFCHAIN) '.'] ident
//! pred    := col (=|<>|<|<=|>|>=) expr | col BETWEEN expr AND expr
//! qcol    := [ident '.'] ident
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Spanned, SqlError, Token};
use sebdb_types::{value::DECIMAL_SCALE, DataType, Value};

/// Parses one statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_optional_semicolon();
    if let Some(t) = p.peek() {
        return Err(SqlError::new(
            format!("unexpected trailing input: {:?}", t.token),
            t.offset,
        ));
    }
    Ok(stmt)
}

/// Parses a `;`-separated script into statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, SqlError> {
    src.split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse)
        .collect()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.peek().map(|t| t.offset).unwrap_or(usize::MAX)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.token == *want => Ok(()),
            Some(t) => Err(SqlError::new(
                format!("expected {what}, found {:?}", t.token),
                t.offset,
            )),
            None => Err(SqlError::new(
                format!("expected {what}, found end of input"),
                usize::MAX,
            )),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t.token.is_kw(kw) => Ok(()),
            Some(t) => Err(SqlError::new(
                format!("expected keyword {kw}, found {:?}", t.token),
                t.offset,
            )),
            None => Err(SqlError::new(format!("expected keyword {kw}"), usize::MAX)),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.token.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek().is_some_and(|t| t.token == *tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_optional_semicolon(&mut self) {
        while self.eat(&Token::Semicolon) {}
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.next() {
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) => Ok(s),
            Some(t) => Err(SqlError::new(
                format!("expected {what}, found {:?}", t.token),
                t.offset,
            )),
            None => Err(SqlError::new(format!("expected {what}"), usize::MAX)),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        let t = self
            .peek()
            .ok_or_else(|| SqlError::new("empty statement", 0))?;
        if t.token.is_kw("create") {
            self.create()
        } else if t.token.is_kw("insert") {
            self.insert()
        } else if t.token.is_kw("select") {
            self.select()
        } else if t.token.is_kw("trace") {
            self.trace()
        } else if t.token.is_kw("get") {
            self.get_block()
        } else {
            Err(SqlError::new(
                format!("expected a statement keyword, found {:?}", t.token),
                t.offset,
            ))
        }
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("create")?;
        self.eat_kw("table"); // optional
        let table = self.ident("table name")?;
        self.expect(&Token::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let name = self.ident("column name")?;
            let off = self.offset();
            let tyname = self.ident("column type")?;
            let dtype = DataType::parse(&tyname)
                .ok_or_else(|| SqlError::new(format!("unknown type '{tyname}'"), off))?;
            columns.push((name, dtype));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Statement::Create { table, columns })
    }

    fn insert(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("insert")?;
        self.eat_kw("into"); // optional, per Example 1
        let table = self.ident("table name")?;
        self.eat_kw("values"); // optional, per Example 1
        self.expect(&Token::LParen, "'('")?;
        let mut values = Vec::new();
        loop {
            values.push(self.expr()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')'")?;
        Ok(Statement::Insert { table, values })
    }

    fn select(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("select")?;
        let mut count = false;
        let projection = if self.eat_kw("count") {
            self.expect(&Token::LParen, "'(' after COUNT")?;
            self.expect(&Token::Star, "'*' in COUNT(*)")?;
            self.expect(&Token::RParen, "')'")?;
            count = true;
            Vec::new()
        } else if self.eat(&Token::Star) {
            Vec::new()
        } else {
            let mut cols = vec![self.ident("column")?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident("column")?);
            }
            cols
        };
        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let join = if self.eat(&Token::Comma) {
            let table = self.table_ref()?;
            self.expect_kw("on")?;
            let left_col = self.qualified_column()?;
            self.expect(&Token::Eq, "'=' in join condition")?;
            let right_col = self.qualified_column()?;
            Some(JoinClause {
                table,
                left_col,
                right_col,
            })
        } else {
            None
        };
        let mut predicates = Vec::new();
        if self.eat_kw("where") {
            predicates.push(self.predicate()?);
            while self.eat_kw("and") {
                predicates.push(self.predicate()?);
            }
        }
        let window = if self.eat_kw("window") {
            Some(self.window_literal()?)
        } else {
            None
        };
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Spanned {
                    token: Token::Int(n),
                    ..
                }) if n >= 0 => Some(n as u64),
                Some(t) => {
                    return Err(SqlError::new(
                        format!("LIMIT needs a non-negative integer, found {:?}", t.token),
                        t.offset,
                    ))
                }
                None => return Err(SqlError::new("LIMIT needs an integer", usize::MAX)),
            }
        } else {
            None
        };
        Ok(Statement::Select(SelectStmt {
            count,
            limit,
            projection,
            from,
            join,
            predicates,
            window,
        }))
    }

    fn trace(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("trace")?;
        let window = if self.peek().is_some_and(|t| t.token == Token::LBracket) {
            Some(self.window_literal()?)
        } else {
            None
        };
        let mut operator = None;
        let mut operation = None;
        loop {
            if self.eat_kw("operator") {
                self.expect(&Token::Eq, "'='")?;
                operator = Some(self.expr()?);
            } else if self.eat_kw("operation") {
                self.expect(&Token::Eq, "'='")?;
                operation = Some(self.expr()?);
            } else if self.eat(&Token::Comma) {
                continue;
            } else {
                break;
            }
        }
        if operator.is_none() && operation.is_none() {
            return Err(SqlError::new(
                "TRACE needs at least one of OPERATOR / OPERATION",
                self.offset(),
            ));
        }
        Ok(Statement::Trace {
            window,
            operator,
            operation,
        })
    }

    fn get_block(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw("get")?;
        self.expect_kw("block")?;
        let off = self.offset();
        let key = self.ident("ID / TID / TIMESTAMP")?;
        self.expect(&Token::Eq, "'='")?;
        let e = self.expr()?;
        let sel = match key.to_ascii_lowercase().as_str() {
            "id" | "bid" | "height" => BlockSelector::ById(e),
            "tid" => BlockSelector::ByTid(e),
            "timestamp" | "ts" => BlockSelector::ByTimestamp(e),
            other => {
                return Err(SqlError::new(
                    format!("unknown block selector '{other}'"),
                    off,
                ))
            }
        };
        Ok(Statement::GetBlock(sel))
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let first = self.ident("table name")?;
        if self.eat(&Token::Dot) {
            let name = self.ident("table name")?;
            let source = match first.to_ascii_lowercase().as_str() {
                "onchain" => TableSource::OnChain,
                "offchain" => TableSource::OffChain,
                other => {
                    return Err(SqlError::new(
                        format!("unknown table source '{other}' (use onchain/offchain)"),
                        self.offset(),
                    ))
                }
            };
            Ok(TableRef { source, name })
        } else {
            Ok(TableRef {
                source: TableSource::OnChain,
                name: first,
            })
        }
    }

    /// A possibly table-qualified column; only the column part is kept
    /// (the executor resolves which side it binds to).
    fn qualified_column(&mut self) -> Result<String, SqlError> {
        let first = self.ident("column")?;
        if self.eat(&Token::Dot) {
            self.ident("column")
        } else {
            Ok(first)
        }
    }

    fn predicate(&mut self) -> Result<WherePredicate, SqlError> {
        let column = self.qualified_column()?;
        if self.eat_kw("between") {
            let lo = self.expr()?;
            self.expect_kw("and")?;
            let hi = self.expr()?;
            return Ok(WherePredicate::Between { column, lo, hi });
        }
        let op = match self.next() {
            Some(t) => match t.token {
                Token::Eq => CompareOp::Eq,
                Token::Ne => CompareOp::Ne,
                Token::Lt => CompareOp::Lt,
                Token::Le => CompareOp::Le,
                Token::Gt => CompareOp::Gt,
                Token::Ge => CompareOp::Ge,
                other => {
                    return Err(SqlError::new(
                        format!("expected comparison operator, found {other:?}"),
                        t.offset,
                    ))
                }
            },
            None => return Err(SqlError::new("expected comparison operator", usize::MAX)),
        };
        let value = self.expr()?;
        Ok(WherePredicate::Compare { column, op, value })
    }

    fn window_literal(&mut self) -> Result<(Expr, Expr), SqlError> {
        self.expect(&Token::LBracket, "'['")?;
        let start = self.expr()?;
        self.expect(&Token::Comma, "','")?;
        let end = self.expr()?;
        self.expect(&Token::RBracket, "']'")?;
        Ok((start, end))
    }

    fn expr(&mut self) -> Result<Expr, SqlError> {
        match self.next() {
            Some(Spanned {
                token: Token::Int(i),
                ..
            }) => Ok(Expr::Literal(Value::Int(i))),
            Some(Spanned {
                token: Token::Float(f),
                ..
            }) => Ok(Expr::Literal(Value::Decimal(
                (f * DECIMAL_SCALE as f64).round() as i64,
            ))),
            Some(Spanned {
                token: Token::Str(s),
                ..
            }) => Ok(Expr::Literal(Value::Str(s))),
            Some(Spanned {
                token: Token::Param,
                ..
            }) => {
                let i = self.params;
                self.params += 1;
                Ok(Expr::Param(i))
            }
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case("true") => Ok(Expr::Literal(Value::Bool(true))),
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case("false") => Ok(Expr::Literal(Value::Bool(false))),
            Some(Spanned {
                token: Token::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case("null") => Ok(Expr::Literal(Value::Null)),
            Some(t) => Err(SqlError::new(
                format!("expected a literal or '?', found {:?}", t.token),
                t.offset,
            )),
            None => Err(SqlError::new("expected a literal or '?'", usize::MAX)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create() {
        let stmt = parse("CREATE Donate (donor string, project string, amount decimal)").unwrap();
        assert_eq!(
            stmt,
            Statement::Create {
                table: "Donate".into(),
                columns: vec![
                    ("donor".into(), DataType::Str),
                    ("project".into(), DataType::Str),
                    ("amount".into(), DataType::Decimal),
                ],
            }
        );
    }

    #[test]
    fn parses_insert_both_forms() {
        // Example 1 form (no VALUES keyword).
        let a = parse(r#"INSERT into Donate ("Jack", "Education", 100)"#).unwrap();
        // Q1 form.
        let b = parse("INSERT INTO Donate VALUES(?,?,?);").unwrap();
        match a {
            Statement::Insert { table, values } => {
                assert_eq!(table, "Donate");
                assert_eq!(values[0], Expr::Literal(Value::str("Jack")));
                assert_eq!(values[2], Expr::Literal(Value::Int(100)));
            }
            other => panic!("{other:?}"),
        }
        match b {
            Statement::Insert { values, .. } => {
                assert_eq!(values, vec![Expr::Param(0), Expr::Param(1), Expr::Param(2)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q4_range_select() {
        let stmt = parse("SELECT * FROM donate WHERE amount BETWEEN ? AND ?;").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(s.projection.is_empty());
                assert_eq!(s.from.name, "donate");
                assert_eq!(s.from.source, TableSource::OnChain);
                assert_eq!(
                    s.predicates,
                    vec![WherePredicate::Between {
                        column: "amount".into(),
                        lo: Expr::Param(0),
                        hi: Expr::Param(1),
                    }]
                );
                assert!(s.join.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q5_onchain_join() {
        let stmt = parse(
            "SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization;",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                let j = s.join.unwrap();
                assert_eq!(j.table.name, "distribute");
                assert_eq!(j.left_col, "organization");
                assert_eq!(j.right_col, "organization");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q6_onoff_join() {
        let stmt = parse(
            "SELECT * FROM onchain.distribute, offchain.donorinfo ON distribute.donee = donorinfo.donee;",
        )
        .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.from.source, TableSource::OnChain);
                let j = s.join.unwrap();
                assert_eq!(j.table.source, TableSource::OffChain);
                assert_eq!(j.table.name, "donorinfo");
                assert_eq!(j.left_col, "donee");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q2_and_q3_trace() {
        let q2 = parse(r#"TRACE OPERATOR = "org1";"#).unwrap();
        assert_eq!(
            q2,
            Statement::Trace {
                window: None,
                operator: Some(Expr::Literal(Value::str("org1"))),
                operation: None,
            }
        );
        let q3 = parse(r#"TRACE [0, 99] OPERATOR = "org1", OPERATION = "transfer";"#).unwrap();
        match q3 {
            Statement::Trace {
                window: Some((lo, hi)),
                operator: Some(_),
                operation: Some(op),
            } => {
                assert_eq!(lo, Expr::Literal(Value::Int(0)));
                assert_eq!(hi, Expr::Literal(Value::Int(99)));
                assert_eq!(op, Expr::Literal(Value::str("transfer")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_requires_a_dimension() {
        assert!(parse("TRACE [0, 10]").is_err());
    }

    #[test]
    fn parses_q7_get_block() {
        assert_eq!(
            parse("GET BLOCK ID=?;").unwrap(),
            Statement::GetBlock(BlockSelector::ById(Expr::Param(0)))
        );
        assert_eq!(
            parse("GET BLOCK TIMESTAMP = 12345").unwrap(),
            Statement::GetBlock(BlockSelector::ByTimestamp(Expr::Literal(Value::Int(12345))))
        );
        assert!(parse("GET BLOCK HASH = 1").is_err());
    }

    #[test]
    fn parses_select_with_window() {
        let stmt = parse(r#"SELECT * FROM donate WHERE donor = "Jack" WINDOW [100, 200]"#).unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(s.window.is_some());
                assert_eq!(s.predicates.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_projection_list() {
        let stmt = parse("SELECT donor, amount FROM donate WHERE amount >= 10").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert_eq!(
                    s.projection,
                    vec!["donor".to_string(), "amount".to_string()]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn float_literals_become_decimals() {
        let stmt = parse("SELECT * FROM donate WHERE amount = 1.5").unwrap();
        match stmt {
            Statement::Select(s) => match &s.predicates[0] {
                WherePredicate::Compare { value, .. } => {
                    assert_eq!(*value, Expr::Literal(Value::Decimal(15_000)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_count_and_limit() {
        let stmt = parse("SELECT COUNT(*) FROM donate WHERE amount >= 10").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(s.count);
                assert!(s.limit.is_none());
                assert!(s.projection.is_empty());
            }
            other => panic!("{other:?}"),
        }
        let stmt = parse("SELECT * FROM donate LIMIT 5").unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(!s.count);
                assert_eq!(s.limit, Some(5));
            }
            other => panic!("{other:?}"),
        }
        let stmt =
            parse("SELECT COUNT(*) FROM donate WHERE amount BETWEEN 1 AND 2 WINDOW [0, 9] LIMIT 1")
                .unwrap();
        match stmt {
            Statement::Select(s) => {
                assert!(s.count && s.limit == Some(1) && s.window.is_some());
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("SELECT COUNT(amount) FROM donate").is_err());
        assert!(parse("SELECT * FROM t LIMIT -3").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("DROP TABLE donate").is_err());
        assert!(parse("SELECT FROM donate").is_err());
        assert!(parse("INSERT INTO t (1,2,").is_err());
        assert!(parse("SELECT * FROM a, b").is_err()); // join without ON
        assert!(parse("SELECT * FROM mars.x, b ON x.a = b.a").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 1 extra").is_err());
    }

    #[test]
    fn parses_explain() {
        let stmt = parse("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap();
        match stmt {
            Statement::Explain(inner) => {
                assert!(matches!(*inner, Statement::Select(_)));
            }
            other => panic!("{other:?}"),
        }
        // Nested EXPLAIN is accepted (idempotent description).
        assert!(parse("EXPLAIN EXPLAIN GET BLOCK ID = 1").is_ok());
        // Params flow through.
        assert_eq!(
            parse("EXPLAIN INSERT INTO t VALUES (?, ?)")
                .unwrap()
                .param_count(),
            2
        );
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn parse_script_splits_statements() {
        let stmts = parse_script(
            "CREATE t (a int); INSERT INTO t VALUES (1); SELECT * FROM t WHERE a = 1;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn params_numbered_left_to_right() {
        let stmt =
            parse("SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ? WINDOW [?, ?]").unwrap();
        assert_eq!(stmt.param_count(), 5);
    }
}
