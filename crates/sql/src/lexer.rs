//! Tokenizer for the SEBDB SQL-like language.
//!
//! The language is small and deliberately non-standard (§III-A): the
//! usual `CREATE`/`INSERT`/`SELECT` plus the blockchain-specific
//! `TRACE` and `GET BLOCK` statements, `onchain.`/`offchain.` source
//! qualifiers, and `[start, end]` time windows — so we tokenize by
//! hand rather than bend a SQL crate (DESIGN.md §6).

/// Lexer / parser errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset into the source where the problem starts.
    pub offset: usize,
}

impl SqlError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        SqlError {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (case preserved; keyword matching is
    /// case-insensitive).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal (scaled to `Value::Decimal` units later).
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// `?` positional parameter.
    Param,
    /// Punctuation / operators.
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token plus its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where it starts.
    pub offset: usize,
}

/// Tokenizes `src`.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Decode the char at `i` properly: a raw byte cast misreads
        // multi-byte UTF-8 (and then slicing panics mid-codepoint).
        let c = src[i..].chars().next().expect("i is on a char boundary");
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    offset: start,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                out.push(Spanned {
                    token: Token::Star,
                    offset: start,
                });
                i += 1;
            }
            '?' => {
                out.push(Spanned {
                    token: Token::Param,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                out.push(Spanned {
                    token: Token::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(SqlError::new("expected '=' after '!'", start));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match src[i..].chars().next() {
                        None => return Err(SqlError::new("unterminated string literal", start)),
                        Some(q) if q == quote => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            let esc = src[i + 1..]
                                .chars()
                                .next()
                                .ok_or_else(|| SqlError::new("dangling escape", i))?;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 1 + esc.len_utf8();
                        }
                        Some(ch) => {
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            '-' | '0'..='9' => {
                let mut j = i;
                if c == '-' {
                    j += 1;
                    if !bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                        return Err(SqlError::new("expected digits after '-'", start));
                    }
                }
                let mut is_float = false;
                while j < bytes.len() {
                    match bytes[j] {
                        b'0'..=b'9' => j += 1,
                        b'.' if !is_float
                            && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) =>
                        {
                            is_float = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                let text = &src[i..j];
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| SqlError::new("bad float literal", start))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| SqlError::new("integer literal out of range", start))?,
                    )
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                for ch in src[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        j += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Ident(src[i..j].to_owned()),
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character '{other}'"),
                    start,
                ));
            }
        }
    }
    Ok(out)
}

impl Token {
    /// Case-insensitive keyword check for identifier tokens.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_q1() {
        assert_eq!(
            toks("INSERT INTO donate VALUES(?,?,?);"),
            vec![
                Token::Ident("INSERT".into()),
                Token::Ident("INTO".into()),
                Token::Ident("donate".into()),
                Token::Ident("VALUES".into()),
                Token::LParen,
                Token::Param,
                Token::Comma,
                Token::Param,
                Token::Comma,
                Token::Param,
                Token::RParen,
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn tokenizes_strings_and_numbers() {
        assert_eq!(
            toks(r#"'org1' "two words" 42 -7 3.25"#),
            vec![
                Token::Str("org1".into()),
                Token::Str("two words".into()),
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.25),
            ]
        );
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            toks("= <> != < <= > >= . *"),
            vec![
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Dot,
                Token::Star,
            ]
        );
    }

    #[test]
    fn tokenizes_window_brackets() {
        assert_eq!(
            toks("TRACE [0, 100]"),
            vec![
                Token::Ident("TRACE".into()),
                Token::LBracket,
                Token::Int(0),
                Token::Comma,
                Token::Int(100),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b\nc""#), vec![Token::Str("a\"b\nc".into())]);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = tokenize("SELECT @").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("1.").is_err() || toks("1.").len() == 2); // "1." = Int(1), Dot
    }

    #[test]
    fn utf8_strings_and_identifiers() {
        assert_eq!(
            toks("'h\u{e9}llo w\u{f6}rld'"),
            vec![Token::Str("h\u{e9}llo w\u{f6}rld".into())]
        );
        // Unicode identifiers are accepted whole.
        assert_eq!(
            toks("pr\u{e9}nom"),
            vec![Token::Ident("pr\u{e9}nom".into())]
        );
        // Garbage multi-byte input errors instead of panicking.
        assert!(tokenize("\u{1F600}").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = Token::Ident("SeLeCt".into());
        assert!(t.is_kw("select"));
        assert!(!t.is_kw("insert"));
    }
}
