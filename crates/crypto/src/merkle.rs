//! Merkle hash tree (Merkle, 1989).
//!
//! Every SEBDB block header carries `trans_root`, the Merkle root over the
//! block's transactions (§IV-A). Thin clients use it two ways:
//!
//! * the *basic* authenticated-query approach ships whole blocks and the
//!   client recomputes each block's transaction Merkle root (§VII-F);
//! * simple membership proofs ("is transaction T in block B?") use the
//!   audit path produced by [`MerkleTree::proof`].
//!
//! Leaves are hashed with a `0x00` domain-separation prefix and inner
//! nodes with `0x01`, which rules out second-preimage attacks that
//! confuse leaves with inner nodes.

use crate::sha256::{Digest, Sha256};

/// Hashes a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes a pair of child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A fully materialized Merkle tree. Levels are stored bottom-up:
/// `levels[0]` are the leaf hashes, `levels.last()` is `[root]`.
///
/// An odd node at any level is promoted unchanged (Bitcoin-style
/// duplication would let an attacker craft two distinct leaf sets with
/// the same root; promotion does not).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
}

/// One step of an audit path: the sibling digest and which side it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sibling {
    /// Sibling is the left child; our running hash is the right child.
    Left(Digest),
    /// Sibling is the right child; our running hash is the left child.
    Right(Digest),
}

/// An inclusion proof for a single leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Audit path from the leaf to (but excluding) the root.
    pub path: Vec<Sibling>,
}

impl MerkleProof {
    /// Size of the proof in bytes when serialized (one digest + one side
    /// bit per step); used by the VO-size experiments.
    pub fn byte_len(&self) -> usize {
        self.path.len() * (32 + 1) + 8
    }
}

impl MerkleTree {
    /// Builds a tree over raw leaf payloads.
    pub fn from_leaves<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        let hashes: Vec<Digest> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(hashes)
    }

    /// Builds a tree over already-hashed leaves.
    pub fn from_leaf_hashes(hashes: Vec<Digest>) -> Self {
        let mut levels = vec![hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut pairs = prev.chunks_exact(2);
            for pair in &mut pairs {
                next.push(node_hash(&pair[0], &pair[1]));
            }
            if let [odd] = pairs.remainder() {
                next.push(*odd);
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The root digest. An empty tree hashes to [`Digest::ZERO`].
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first().copied())
            .unwrap_or(Digest::ZERO)
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                let sib = level[sibling_idx];
                path.push(if sibling_idx < idx {
                    Sibling::Left(sib)
                } else {
                    Sibling::Right(sib)
                });
            }
            // Odd promoted nodes contribute no sibling at this level.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }

    /// Verifies `proof` for leaf payload `leaf` against `root`.
    pub fn verify(root: &Digest, leaf: &[u8], proof: &MerkleProof) -> bool {
        Self::verify_hash(root, leaf_hash(leaf), proof)
    }

    /// Verifies `proof` for an already-hashed leaf against `root`.
    pub fn verify_hash(root: &Digest, leaf: Digest, proof: &MerkleProof) -> bool {
        let mut acc = leaf;
        for step in &proof.path {
            acc = match step {
                Sibling::Left(sib) => node_hash(sib, &acc),
                Sibling::Right(sib) => node_hash(&acc, sib),
            };
        }
        acc == *root
    }
}

/// Computes only the Merkle root of `leaves` without materializing the
/// tree — the common path when sealing a block.
pub fn merkle_root<T: AsRef<[u8]>>(leaves: &[T]) -> Digest {
    merkle_root_of_hashes(leaves.iter().map(|l| leaf_hash(l.as_ref())).collect())
}

/// Computes the Merkle root over pre-hashed leaves.
pub fn merkle_root_of_hashes(mut level: Vec<Digest>) -> Digest {
    if level.is_empty() {
        return Digest::ZERO;
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.chunks_exact(2);
        for pair in &mut pairs {
            next.push(node_hash(&pair[0], &pair[1]));
        }
        if let [odd] = pairs.remainder() {
            next.push(*odd);
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Digest::ZERO);
        assert_eq!(merkle_root::<Vec<u8>>(&[]), Digest::ZERO);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
    }

    #[test]
    fn root_matches_fast_path() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            assert_eq!(t.root(), merkle_root(&ls), "n={n}");
        }
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13, 31] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            let root = t.root();
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.proof(i).unwrap();
                assert!(MerkleTree::verify(&root, leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tampered_leaf_fails() {
        let ls = leaves(9);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.proof(4).unwrap();
        assert!(!MerkleTree::verify(&t.root(), b"tx-999", &p));
    }

    #[test]
    fn wrong_index_proof_fails() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.proof(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), ls[5].as_slice(), &p));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::from_leaves(&leaves(4));
        assert!(t.proof(4).is_none());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf containing what looks like two concatenated digests must
        // not hash the same as an inner node over those digests.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let fake_leaf: Vec<u8> = [a.as_bytes(), b.as_bytes()].concat();
        assert_ne!(leaf_hash(&fake_leaf), node_hash(&a, &b));
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_leaves(&leaves(5));
        let mut ls = leaves(5);
        ls[2] = b"mutant".to_vec();
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
        // Promotion (not duplication) means [x] and [x, x] differ.
        let one = MerkleTree::from_leaves(&[b"x".to_vec()]);
        let two = MerkleTree::from_leaves(&[b"x".to_vec(), b"x".to_vec()]);
        assert_ne!(one.root(), two.root());
    }
}
