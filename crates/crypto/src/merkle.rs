//! Merkle hash tree (Merkle, 1989).
//!
//! Every SEBDB block header carries `trans_root`, the Merkle root over the
//! block's transactions (§IV-A). Thin clients use it two ways:
//!
//! * the *basic* authenticated-query approach ships whole blocks and the
//!   client recomputes each block's transaction Merkle root (§VII-F);
//! * simple membership proofs ("is transaction T in block B?") use the
//!   audit path produced by [`MerkleTree::proof`].
//!
//! Leaves are hashed with a `0x00` domain-separation prefix and inner
//! nodes with `0x01`, which rules out second-preimage attacks that
//! confuse leaves with inner nodes.

use crate::sha256::{Digest, Sha256};

/// Below this many digests in a level, hashing runs sequentially:
/// SHA-256 over 65 bytes is ~100ns, so small levels never amortize a
/// thread handoff.
const PAR_LEVEL_THRESHOLD: usize = 64;

/// Minimum leaves handed to one worker when leaf-hashing in parallel.
const MIN_LEAVES_PER_THREAD: usize = 32;

/// Hashes a leaf payload.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes a pair of child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A fully materialized Merkle tree. Levels are stored bottom-up:
/// `levels[0]` are the leaf hashes, `levels.last()` is `[root]`.
///
/// An odd node at any level is promoted unchanged (Bitcoin-style
/// duplication would let an attacker craft two distinct leaf sets with
/// the same root; promotion does not).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
}

/// One step of an audit path: the sibling digest and which side it is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sibling {
    /// Sibling is the left child; our running hash is the right child.
    Left(Digest),
    /// Sibling is the right child; our running hash is the left child.
    Right(Digest),
}

/// An inclusion proof for a single leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Audit path from the leaf to (but excluding) the root.
    pub path: Vec<Sibling>,
}

impl MerkleProof {
    /// Size of the proof in bytes when serialized (one digest + one side
    /// bit per step); used by the VO-size experiments.
    pub fn byte_len(&self) -> usize {
        self.path.len() * (32 + 1) + 8
    }
}

/// Hashes one level into its parent level: adjacent pairs are combined
/// with [`node_hash`], an odd trailing node is promoted unchanged.
/// Large levels fan the pair hashing out over `threads` workers; the
/// output is identical to the sequential reduction either way.
fn reduce_level(prev: &[Digest], threads: usize) -> Vec<Digest> {
    let pairs = prev.len() / 2;
    let mut next: Vec<Digest> = if threads > 1 && prev.len() >= PAR_LEVEL_THRESHOLD {
        sebdb_parallel::par_chunks(pairs, threads, MIN_LEAVES_PER_THREAD, |range| {
            range
                .map(|i| node_hash(&prev[2 * i], &prev[2 * i + 1]))
                .collect::<Vec<Digest>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        (0..pairs)
            .map(|i| node_hash(&prev[2 * i], &prev[2 * i + 1]))
            .collect()
    };
    if prev.len() % 2 == 1 {
        next.push(prev[prev.len() - 1]);
    }
    next
}

/// Hashes raw leaf payloads, in parallel when there are enough of them.
fn hash_leaves<T: AsRef<[u8]> + Sync>(leaves: &[T], threads: usize) -> Vec<Digest> {
    if threads > 1 && leaves.len() >= PAR_LEVEL_THRESHOLD {
        sebdb_parallel::par_map_with_threads(leaves, threads, MIN_LEAVES_PER_THREAD, |l| {
            leaf_hash(l.as_ref())
        })
    } else {
        leaves.iter().map(|l| leaf_hash(l.as_ref())).collect()
    }
}

impl MerkleTree {
    /// Builds a tree over raw leaf payloads.
    pub fn from_leaves<T: AsRef<[u8]> + Sync>(leaves: &[T]) -> Self {
        Self::from_leaves_with_threads(leaves, sebdb_parallel::max_threads())
    }

    /// [`Self::from_leaves`] with an explicit worker count.
    pub fn from_leaves_with_threads<T: AsRef<[u8]> + Sync>(leaves: &[T], threads: usize) -> Self {
        Self::from_leaf_hashes_with_threads(hash_leaves(leaves, threads), threads)
    }

    /// Builds a tree over already-hashed leaves.
    pub fn from_leaf_hashes(hashes: Vec<Digest>) -> Self {
        Self::from_leaf_hashes_with_threads(hashes, sebdb_parallel::max_threads())
    }

    /// [`Self::from_leaf_hashes`] with an explicit worker count.
    pub fn from_leaf_hashes_with_threads(hashes: Vec<Digest>, threads: usize) -> Self {
        let mut levels = vec![hashes];
        while levels.last().unwrap().len() > 1 {
            let next = reduce_level(levels.last().unwrap(), threads);
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// The root digest. An empty tree hashes to [`Digest::ZERO`].
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first().copied())
            .unwrap_or(Digest::ZERO)
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                let sib = level[sibling_idx];
                path.push(if sibling_idx < idx {
                    Sibling::Left(sib)
                } else {
                    Sibling::Right(sib)
                });
            }
            // Odd promoted nodes contribute no sibling at this level.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }

    /// Verifies `proof` for leaf payload `leaf` against `root`.
    pub fn verify(root: &Digest, leaf: &[u8], proof: &MerkleProof) -> bool {
        Self::verify_hash(root, leaf_hash(leaf), proof)
    }

    /// Verifies `proof` for an already-hashed leaf against `root`.
    pub fn verify_hash(root: &Digest, leaf: Digest, proof: &MerkleProof) -> bool {
        let mut acc = leaf;
        for step in &proof.path {
            acc = match step {
                Sibling::Left(sib) => node_hash(sib, &acc),
                Sibling::Right(sib) => node_hash(&acc, sib),
            };
        }
        acc == *root
    }
}

/// Computes only the Merkle root of `leaves` without materializing the
/// tree — the common path when sealing a block.
pub fn merkle_root<T: AsRef<[u8]> + Sync>(leaves: &[T]) -> Digest {
    merkle_root_with_threads(leaves, sebdb_parallel::max_threads())
}

/// [`merkle_root`] with an explicit worker count.
pub fn merkle_root_with_threads<T: AsRef<[u8]> + Sync>(leaves: &[T], threads: usize) -> Digest {
    merkle_root_of_hashes_with_threads(hash_leaves(leaves, threads), threads)
}

/// Computes the Merkle root over pre-hashed leaves.
pub fn merkle_root_of_hashes(level: Vec<Digest>) -> Digest {
    merkle_root_of_hashes_with_threads(level, sebdb_parallel::max_threads())
}

/// [`merkle_root_of_hashes`] with an explicit worker count.
pub fn merkle_root_of_hashes_with_threads(mut level: Vec<Digest>, threads: usize) -> Digest {
    if level.is_empty() {
        return Digest::ZERO;
    }
    while level.len() > 1 {
        level = reduce_level(&level, threads);
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Digest::ZERO);
        assert_eq!(merkle_root::<Vec<u8>>(&[]), Digest::ZERO);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
    }

    #[test]
    fn root_matches_fast_path() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            assert_eq!(t.root(), merkle_root(&ls), "n={n}");
        }
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in [1usize, 2, 3, 5, 8, 13, 31] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            let root = t.root();
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.proof(i).unwrap();
                assert!(MerkleTree::verify(&root, leaf, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn tampered_leaf_fails() {
        let ls = leaves(9);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.proof(4).unwrap();
        assert!(!MerkleTree::verify(&t.root(), b"tx-999", &p));
    }

    #[test]
    fn wrong_index_proof_fails() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let p = t.proof(3).unwrap();
        assert!(!MerkleTree::verify(&t.root(), ls[5].as_slice(), &p));
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let t = MerkleTree::from_leaves(&leaves(4));
        assert!(t.proof(4).is_none());
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf containing what looks like two concatenated digests must
        // not hash the same as an inner node over those digests.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let fake_leaf: Vec<u8> = [a.as_bytes(), b.as_bytes()].concat();
        assert_ne!(leaf_hash(&fake_leaf), node_hash(&a, &b));
    }

    #[test]
    fn parallel_root_matches_sequential_for_all_small_sizes() {
        // Straddles the parallel threshold (64) and both parities at
        // every level; explicit thread counts so the global cap is
        // irrelevant.
        for n in 0..=257usize {
            let ls = leaves(n);
            let seq = MerkleTree::from_leaves_with_threads(&ls, 1);
            for threads in [2usize, 3, 4, 8] {
                let par = MerkleTree::from_leaves_with_threads(&ls, threads);
                assert_eq!(seq.root(), par.root(), "n={n} threads={threads}");
                assert_eq!(
                    seq.root(),
                    merkle_root_with_threads(&ls, threads),
                    "fast path n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_proofs_match_sequential() {
        for n in [64usize, 65, 128, 200, 257] {
            let ls = leaves(n);
            let seq = MerkleTree::from_leaves_with_threads(&ls, 1);
            let par = MerkleTree::from_leaves_with_threads(&ls, 4);
            let root = seq.root();
            for (i, leaf) in ls.iter().enumerate() {
                let ps = seq.proof(i).unwrap();
                let pp = par.proof(i).unwrap();
                assert_eq!(ps, pp, "n={n} i={i}");
                assert!(MerkleTree::verify(&root, leaf, &pp), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn different_leaf_sets_different_roots() {
        let a = MerkleTree::from_leaves(&leaves(5));
        let mut ls = leaves(5);
        ls[2] = b"mutant".to_vec();
        let b = MerkleTree::from_leaves(&ls);
        assert_ne!(a.root(), b.root());
        // Promotion (not duplication) means [x] and [x, x] differ.
        let one = MerkleTree::from_leaves(&[b"x".to_vec()]);
        let two = MerkleTree::from_leaves(&[b"x".to_vec(), b"x".to_vec()]);
        assert_ne!(one.root(), two.root());
    }
}
