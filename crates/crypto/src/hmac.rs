//! HMAC-SHA-256 (RFC 2104) and an HKDF-style PRF for deterministic key
//! derivation.
//!
//! SEBDB uses HMAC in two places: as the cheap "bulk" authentication mode
//! for benchmark transactions (see [`crate::sig`]) and to derive the
//! per-signature Lamport keys from a compact seed.

use crate::sha256::{sha256, Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Digest {
    // Keys longer than the block size are hashed first.
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = sha256(key);
        key_block[..32].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Deterministic PRF: expands `seed` into a stream of 32-byte blocks,
/// `block(i) = HMAC(seed, be64(i) || label)`. Used to derive Lamport
/// private-key material without storing kilobytes of secrets.
pub struct Prf<'a> {
    seed: &'a [u8],
    label: &'a [u8],
}

impl<'a> Prf<'a> {
    /// Creates a PRF instance over `seed` with a domain-separation `label`.
    pub fn new(seed: &'a [u8], label: &'a [u8]) -> Self {
        Prf { seed, label }
    }

    /// Returns the `i`-th 32-byte output block.
    pub fn block(&self, i: u64) -> Digest {
        let mut msg = Vec::with_capacity(8 + self.label.len());
        msg.extend_from_slice(&i.to_be_bytes());
        msg.extend_from_slice(self.label);
        hmac_sha256(self.seed, &msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let msg = b"Hi There";
        assert_eq!(
            hmac_sha256(&key, msg).to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?").to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        assert_eq!(
            hmac_sha256(&key, &msg).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let msg = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hmac_sha256(&key, msg).to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn prf_is_deterministic_and_distinct() {
        let prf = Prf::new(b"seed", b"label");
        assert_eq!(prf.block(0), prf.block(0));
        assert_ne!(prf.block(0), prf.block(1));
        let prf2 = Prf::new(b"seed", b"other-label");
        assert_ne!(prf.block(0), prf2.block(0));
        let prf3 = Prf::new(b"other-seed", b"label");
        assert_ne!(prf.block(0), prf3.block(0));
    }
}
