//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! SEBDB hashes every transaction, every block header and every Merkle
//! node with SHA-256 (the paper's authenticated index uses SHA256, §VII-A).
//! This implementation is pure Rust, allocation-free for the streaming
//! path, and validated against the published NIST test vectors in the
//! unit tests below.

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 256-bit digest. Wraps the raw bytes so digests get their own
/// type-level identity (and a compact hex `Debug`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest, used as a sentinel (e.g. `prev_hash` of the
    /// genesis block).
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a digest from a 64-char hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.as_bytes();
        if s.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, pair) in s.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// SHA-256 round constants: first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Unprocessed tail of the input, always < 64 bytes after `update`.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially-filled buffer first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        if input.is_empty() {
            // Everything fit in the buffer; nothing more to process.
            return;
        }
        // Whole blocks straight from the input.
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 128];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bit_len.to_be_bytes());
        pad[pad_len..pad_len + 8].copy_from_slice(&tail);
        self.update_no_len(&pad[..pad_len + 8]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// `update` without touching `total_len` (used for padding only).
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    /// The SHA-256 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of two byte strings — the Merkle-tree
/// inner-node primitive. Avoids materializing the concatenation.
pub fn sha256_pair(a: &[u8], b: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        // Feed in awkward chunk sizes to exercise buffering.
        for chunk in [1usize, 3, 7, 63, 64, 65, 129] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths straddling the padding boundary (55/56/57, 63/64/65).
        let known = [
            (
                55usize,
                "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318",
            ),
            (
                56,
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a",
            ),
            (
                64,
                "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb",
            ),
        ];
        for (len, hex) in known {
            let data = vec![b'a'; len];
            assert_eq!(sha256(&data).to_hex(), hex, "len {len}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(""), None);
    }

    #[test]
    fn pair_equals_concat() {
        let a = b"hello";
        let b = b"world";
        let concat = [&a[..], &b[..]].concat();
        assert_eq!(sha256_pair(a, b), sha256(&concat));
    }
}
