//! # sebdb-crypto
//!
//! Cryptographic substrate for SEBDB, implemented from scratch:
//!
//! * [`sha256`](mod@sha256) — SHA-256 (FIPS 180-4), the hash used everywhere in the
//!   paper (block hashes, Merkle roots, authenticated index, §VII-A);
//! * [`hmac`] — HMAC-SHA-256 and a PRF for key derivation;
//! * [`merkle`] — Merkle hash trees with inclusion proofs (the
//!   `trans_root` of every block header);
//! * [`sig`] — transaction signatures: Lamport one-time signatures
//!   (publicly verifiable, hash-based) plus a cheap HMAC bulk mode for
//!   benchmarks. See DESIGN.md §4 for the ECDSA substitution note.

#![warn(missing_docs)]

pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sig;

pub use merkle::{merkle_root, MerkleProof, MerkleTree};
pub use sha256::{sha256, Digest, Sha256};
pub use sig::{KeyId, LamportKeypair, MacKeypair, Signature, Signer, Verifier};
