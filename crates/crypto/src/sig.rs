//! Transaction signatures.
//!
//! The paper signs every transaction (`Sig` system attribute, §IV-A) with
//! standard public-key signatures. We ship two pure-Rust schemes behind
//! one [`Signer`]/[`Verifier`] API:
//!
//! * [`LamportKeypair`] — a real hash-based one-time signature
//!   (Lamport 1979). Unforgeable under the preimage resistance of
//!   SHA-256; anyone holding the public key can verify. Signatures are
//!   ~8 KiB, which is fine for correctness tests and for exercising the
//!   verification code path.
//! * [`MacKeypair`] — keyed-hash authentication (HMAC-SHA-256) used as
//!   the cheap bulk mode for the multi-million-transaction benchmarks.
//!   In a consortium deployment this models nodes that share per-channel
//!   MAC keys; it is *not* publicly verifiable and is clearly labelled.
//!
//! This substitution (vs. the paper's implied ECDSA) is recorded in
//! DESIGN.md §4.

use crate::hmac::{hmac_sha256, Prf};
use crate::sha256::{sha256, Digest};

/// 256 message bits, two preimages per bit.
const LAMPORT_BITS: usize = 256;

/// An identity in the consortium: a compact identifier derived from the
/// public key (or MAC key), used as the `SenID` system attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyId(pub [u8; 8]);

impl KeyId {
    /// Derives a key id from arbitrary key material.
    pub fn derive(material: &[u8]) -> KeyId {
        let d = sha256(material);
        let mut id = [0u8; 8];
        id.copy_from_slice(&d.as_bytes()[..8]);
        KeyId(id)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

/// A detached signature produced by either scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signature {
    /// Lamport OTS: 256 revealed 32-byte preimages.
    Lamport(Box<[Digest; LAMPORT_BITS]>),
    /// HMAC tag.
    Mac(Digest),
}

impl Signature {
    /// Serialized size in bytes (drives the paper's 300 B transaction
    /// budget when MAC mode is used).
    pub fn byte_len(&self) -> usize {
        match self {
            Signature::Lamport(_) => LAMPORT_BITS * 32,
            Signature::Mac(_) => 32,
        }
    }

    /// Parses the wire form produced by [`Signature::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Signature> {
        match bytes.first()? {
            1 if bytes.len() == 33 => {
                let mut d = [0u8; 32];
                d.copy_from_slice(&bytes[1..]);
                Some(Signature::Mac(Digest(d)))
            }
            0 if bytes.len() == 1 + LAMPORT_BITS * 32 => {
                let mut reveal = Box::new([Digest::ZERO; LAMPORT_BITS]);
                for (i, chunk) in bytes[1..].chunks_exact(32).enumerate() {
                    let mut d = [0u8; 32];
                    d.copy_from_slice(chunk);
                    reveal[i] = Digest(d);
                }
                Some(Signature::Lamport(reveal))
            }
            _ => None,
        }
    }

    /// Flattens the signature to bytes for hashing into a transaction id.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            Signature::Lamport(ds) => {
                let mut v = Vec::with_capacity(1 + LAMPORT_BITS * 32);
                v.push(0u8);
                for d in ds.iter() {
                    v.extend_from_slice(d.as_bytes());
                }
                v
            }
            Signature::Mac(d) => {
                let mut v = Vec::with_capacity(33);
                v.push(1u8);
                v.extend_from_slice(d.as_bytes());
                v
            }
        }
    }
}

/// Anything that can sign a message.
pub trait Signer {
    /// Signs `msg`.
    fn sign(&self, msg: &[u8]) -> Signature;
    /// The signer's consortium identity.
    fn key_id(&self) -> KeyId;
}

/// Anything that can verify a signature.
pub trait Verifier {
    /// Checks `sig` over `msg`.
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool;
}

// ---------------------------------------------------------------------
// Lamport one-time signatures
// ---------------------------------------------------------------------

/// A Lamport one-time keypair. Private key material is derived lazily
/// from a 32-byte seed via the PRF, so the keypair itself stays small.
#[derive(Clone)]
pub struct LamportKeypair {
    seed: [u8; 32],
    /// Public key: hash of each of the 512 preimages, committed as a
    /// single digest (hash of all leaf hashes, in order).
    public: LamportPublicKey,
}

/// The public half: 2×256 hashes plus a compact commitment.
#[derive(Clone)]
pub struct LamportPublicKey {
    /// `hashes[bit][b]` = H(preimage for message-bit `bit` = `b`).
    hashes: Box<[[Digest; 2]; LAMPORT_BITS]>,
    id: KeyId,
}

impl std::fmt::Debug for LamportPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LamportPublicKey({:?})", self.id)
    }
}

impl LamportKeypair {
    /// Deterministically generates a keypair from a seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let prf = Prf::new(&seed, b"lamport-sk");
        let mut hashes = Box::new([[Digest::ZERO; 2]; LAMPORT_BITS]);
        let mut commit = Vec::with_capacity(LAMPORT_BITS * 2 * 32);
        for bit in 0..LAMPORT_BITS {
            for b in 0..2 {
                let sk = prf.block((bit * 2 + b) as u64);
                let pk = sha256(sk.as_bytes());
                hashes[bit][b] = pk;
                commit.extend_from_slice(pk.as_bytes());
            }
        }
        let id = KeyId::derive(&commit);
        LamportKeypair {
            seed,
            public: LamportPublicKey { hashes, id },
        }
    }

    /// Generates a keypair from an RNG.
    pub fn generate<R: rand::Rng>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        Self::from_seed(seed)
    }

    /// Returns the public key.
    pub fn public_key(&self) -> &LamportPublicKey {
        &self.public
    }

    fn preimage(&self, bit: usize, b: usize) -> Digest {
        Prf::new(&self.seed, b"lamport-sk").block((bit * 2 + b) as u64)
    }
}

impl Signer for LamportKeypair {
    fn sign(&self, msg: &[u8]) -> Signature {
        let digest = sha256(msg);
        let mut reveal = Box::new([Digest::ZERO; LAMPORT_BITS]);
        for bit in 0..LAMPORT_BITS {
            let byte = digest.as_bytes()[bit / 8];
            let b = ((byte >> (7 - bit % 8)) & 1) as usize;
            reveal[bit] = self.preimage(bit, b);
        }
        Signature::Lamport(reveal)
    }

    fn key_id(&self) -> KeyId {
        self.public.id
    }
}

impl Verifier for LamportPublicKey {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        let Signature::Lamport(reveal) = sig else {
            return false;
        };
        let digest = sha256(msg);
        for bit in 0..LAMPORT_BITS {
            let byte = digest.as_bytes()[bit / 8];
            let b = ((byte >> (7 - bit % 8)) & 1) as usize;
            if sha256(reveal[bit].as_bytes()) != self.hashes[bit][b] {
                return false;
            }
        }
        true
    }
}

// ---------------------------------------------------------------------
// HMAC "bulk mode"
// ---------------------------------------------------------------------

/// Shared-key authentication for high-volume benchmark runs.
#[derive(Clone)]
pub struct MacKeypair {
    key: [u8; 32],
    id: KeyId,
}

impl MacKeypair {
    /// Creates a keypair from a shared secret.
    pub fn from_key(key: [u8; 32]) -> Self {
        let id = KeyId::derive(&key);
        MacKeypair { key, id }
    }

    /// Generates a random shared key.
    pub fn generate<R: rand::Rng>(rng: &mut R) -> Self {
        let mut key = [0u8; 32];
        rng.fill(&mut key);
        Self::from_key(key)
    }
}

impl Signer for MacKeypair {
    fn sign(&self, msg: &[u8]) -> Signature {
        Signature::Mac(hmac_sha256(&self.key, msg))
    }

    fn key_id(&self) -> KeyId {
        self.id
    }
}

impl Verifier for MacKeypair {
    fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        match sig {
            Signature::Mac(tag) => *tag == hmac_sha256(&self.key, msg),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lamport_sign_verify() {
        let kp = LamportKeypair::from_seed([7u8; 32]);
        let sig = kp.sign(b"donate 100 to education");
        assert!(kp.public_key().verify(b"donate 100 to education", &sig));
    }

    #[test]
    fn lamport_rejects_wrong_message() {
        let kp = LamportKeypair::from_seed([7u8; 32]);
        let sig = kp.sign(b"donate 100");
        assert!(!kp.public_key().verify(b"donate 101", &sig));
    }

    #[test]
    fn lamport_rejects_other_key() {
        let kp1 = LamportKeypair::from_seed([1u8; 32]);
        let kp2 = LamportKeypair::from_seed([2u8; 32]);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
        assert_ne!(kp1.key_id(), kp2.key_id());
    }

    #[test]
    fn lamport_rejects_tampered_signature() {
        let kp = LamportKeypair::from_seed([9u8; 32]);
        let mut sig = kp.sign(b"msg");
        if let Signature::Lamport(ref mut reveal) = sig {
            reveal[10] = Digest::ZERO;
        }
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn mac_sign_verify() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let kp = MacKeypair::generate(&mut rng);
        let sig = kp.sign(b"transfer");
        assert!(kp.verify(b"transfer", &sig));
        assert!(!kp.verify(b"transfer!", &sig));
        assert_eq!(sig.byte_len(), 32);
    }

    #[test]
    fn schemes_are_not_cross_verifiable() {
        let lam = LamportKeypair::from_seed([3u8; 32]);
        let mac = MacKeypair::from_key([3u8; 32]);
        let lsig = lam.sign(b"m");
        let msig = mac.sign(b"m");
        assert!(!mac.verify(b"m", &lsig));
        assert!(!lam.public_key().verify(b"m", &msig));
    }

    #[test]
    fn signature_bytes_distinct_by_scheme() {
        let lam = LamportKeypair::from_seed([4u8; 32]);
        let mac = MacKeypair::from_key([4u8; 32]);
        assert_ne!(lam.sign(b"m").to_bytes()[0], mac.sign(b"m").to_bytes()[0]);
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let lam = LamportKeypair::from_seed([6u8; 32]);
        let mac = MacKeypair::from_key([6u8; 32]);
        for sig in [lam.sign(b"m"), mac.sign(b"m")] {
            assert_eq!(Signature::from_bytes(&sig.to_bytes()), Some(sig));
        }
        assert_eq!(Signature::from_bytes(&[]), None);
        assert_eq!(Signature::from_bytes(&[1, 2, 3]), None);
        assert_eq!(Signature::from_bytes(&[9; 33]), None);
    }

    #[test]
    fn keypair_determinism() {
        let a = LamportKeypair::from_seed([5u8; 32]);
        let b = LamportKeypair::from_seed([5u8; 32]);
        assert_eq!(a.key_id(), b.key_id());
        assert_eq!(a.sign(b"x"), b.sign(b"x"));
    }
}
