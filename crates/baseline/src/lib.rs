//! # sebdb-baseline
//!
//! A ChainSQL-style comparator for §VII-G (Figs. 20–21). ChainSQL
//! achieves agreement on-chain and then "stores all transactions in
//! each local commercial RDBMS, so that a user can get results by the
//! querying engine of commercial RDBMS". We reproduce the API shape
//! the paper benchmarks against:
//!
//! * every committed transaction is replicated into the local
//!   mini-RDBMS (`sebdb-offchain`), indexed by sender — so
//!   one-dimension tracking is served by an index and is insensitive
//!   to chain size (Fig. 20);
//! * ChainSQL "does not optimize the performance of tracking
//!   specially": for two-dimension tracking the client calls the
//!   `GET_TRANSACTION` api, receives **all** of the operator's
//!   transactions, and filters by operation locally — so latency grows
//!   with the operator's transaction count (Fig. 21).

#![warn(missing_docs)]

use sebdb_crypto::sig::KeyId;
use sebdb_offchain::{CmpOp, OffchainConnection, OffchainDb, Predicate};
use sebdb_types::{Block, Codec, Column, DataType, Transaction, Value};
use std::sync::Arc;

/// The replicated-transactions table name.
pub const TX_TABLE: &str = "chainsql_transactions";

/// A ChainSQL-style node: chain agreement elsewhere, queries served
/// from the local RDBMS replica.
pub struct ChainSqlBaseline {
    db: Arc<OffchainDb>,
    conn: OffchainConnection,
    /// Bytes shipped to clients by `get_transaction` calls (for
    /// transfer-cost accounting in the figures).
    pub bytes_served: std::sync::atomic::AtomicU64,
}

impl Default for ChainSqlBaseline {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainSqlBaseline {
    /// Creates the baseline with its RDBMS replica (sender-indexed).
    pub fn new() -> Self {
        let db = Arc::new(OffchainDb::new());
        db.create_table(
            TX_TABLE,
            vec![
                Column::new("tid", DataType::Int),
                Column::new("ts", DataType::Timestamp),
                Column::new("sender", DataType::Bytes),
                Column::new("tname", DataType::Str),
                Column::new("payload", DataType::Bytes),
            ],
        )
        .expect("fresh database");
        let conn = db.connect();
        conn.create_index(TX_TABLE, "sender").expect("table exists");
        ChainSqlBaseline {
            db,
            conn,
            bytes_served: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Replicates a committed block's transactions into the RDBMS
    /// (ChainSQL's second loop).
    pub fn ingest_block(&self, block: &Block) {
        for tx in &block.transactions {
            self.conn
                .insert(
                    TX_TABLE,
                    vec![
                        Value::Int(tx.tid as i64),
                        Value::Timestamp(tx.ts),
                        Value::Bytes(tx.sender.as_bytes().to_vec()),
                        Value::Str(tx.tname.clone()),
                        Value::Bytes(tx.to_bytes()),
                    ],
                )
                .expect("replication insert");
        }
    }

    /// Replicated row count.
    pub fn replicated(&self) -> usize {
        self.conn.count(TX_TABLE).unwrap_or(0)
    }

    /// The `GET_TRANSACTION` api: all transactions sent by `sender`,
    /// fully materialized (this is what crosses the wire to the
    /// client).
    pub fn get_transaction(&self, sender: &KeyId) -> Vec<Transaction> {
        let rows = self
            .conn
            .select(
                TX_TABLE,
                &Predicate::Compare {
                    column: 2,
                    op: CmpOp::Eq,
                    value: Value::Bytes(sender.as_bytes().to_vec()),
                },
            )
            .unwrap_or_default();
        let mut out = Vec::with_capacity(rows.len());
        let mut bytes = 0u64;
        for row in rows {
            if let Value::Bytes(payload) = &row[4] {
                bytes += payload.len() as u64;
                if let Ok(tx) = Transaction::from_bytes(payload) {
                    out.push(tx);
                }
            }
        }
        self.bytes_served
            .fetch_add(bytes, std::sync::atomic::Ordering::Relaxed);
        out
    }

    /// One-dimension tracking: served directly by the RDBMS index
    /// (Fig. 20's flat curve).
    pub fn track_operator(&self, sender: &KeyId) -> Vec<Transaction> {
        self.get_transaction(sender)
    }

    /// Two-dimension tracking as a ChainSQL client must do it: fetch
    /// all of the operator's transactions, filter by operation
    /// locally (Fig. 21's rising curve).
    pub fn track_operator_operation(&self, sender: &KeyId, tname: &str) -> Vec<Transaction> {
        self.get_transaction(sender)
            .into_iter()
            .filter(|t| t.tname.eq_ignore_ascii_case(tname))
            .collect()
    }

    /// Direct connection (for tests).
    pub fn connection(&self) -> OffchainConnection {
        self.db.connect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sebdb_crypto::sha256::Digest;

    const ORG1: KeyId = KeyId([1; 8]);
    const ORG2: KeyId = KeyId([2; 8]);

    fn block(height: u64, txs: Vec<(&str, KeyId)>) -> Block {
        let txs = txs
            .into_iter()
            .enumerate()
            .map(|(i, (tname, sender))| {
                let mut t = Transaction::new(
                    height * 10 + i as u64,
                    sender,
                    tname,
                    vec![Value::Int(i as i64)],
                );
                t.tid = height * 100 + i as u64;
                t
            })
            .collect();
        Block::seal(Digest::ZERO, height, height, txs, |_| vec![])
    }

    #[test]
    fn replication_and_get_transaction() {
        let b = ChainSqlBaseline::new();
        b.ingest_block(&block(
            0,
            vec![("donate", ORG1), ("transfer", ORG1), ("donate", ORG2)],
        ));
        b.ingest_block(&block(1, vec![("transfer", ORG2)]));
        assert_eq!(b.replicated(), 4);
        let org1 = b.get_transaction(&ORG1);
        assert_eq!(org1.len(), 2);
        assert!(org1.iter().all(|t| t.sender == ORG1));
        assert!(b.bytes_served.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn two_dim_tracking_filters_client_side() {
        let b = ChainSqlBaseline::new();
        b.ingest_block(&block(
            0,
            vec![("donate", ORG1), ("transfer", ORG1), ("transfer", ORG1)],
        ));
        let hits = b.track_operator_operation(&ORG1, "transfer");
        assert_eq!(hits.len(), 2);
        // The server still shipped all three transactions.
        let shipped = b.get_transaction(&ORG1).len();
        assert_eq!(shipped, 3);
    }

    #[test]
    fn transfer_grows_with_operator_volume() {
        // The Fig. 21 mechanism: bytes served grows with the operator's
        // transaction count even at fixed result size.
        let small = ChainSqlBaseline::new();
        let large = ChainSqlBaseline::new();
        small.ingest_block(&block(0, vec![("transfer", ORG1); 5]));
        for h in 0..10 {
            large.ingest_block(&block(h, vec![("donate", ORG1); 10]));
        }
        large.ingest_block(&block(10, vec![("transfer", ORG1); 5]));
        let a = small.track_operator_operation(&ORG1, "transfer");
        let b = large.track_operator_operation(&ORG1, "transfer");
        assert_eq!(a.len(), b.len());
        let sb = small
            .bytes_served
            .load(std::sync::atomic::Ordering::Relaxed);
        let lb = large
            .bytes_served
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(lb > sb * 5, "large {lb} vs small {sb}");
    }

    #[test]
    fn unknown_sender_empty() {
        let b = ChainSqlBaseline::new();
        assert!(b.get_transaction(&KeyId([9; 8])).is_empty());
    }
}
