//! Model-based testing: `OffTable` (with secondary indexes) must
//! behave exactly like a naive `Vec<Vec<Value>>` under any interleaving
//! of inserts, updates, deletes, and selects.

use proptest::prelude::*;
use sebdb_offchain::{CmpOp, OffTable, Predicate};
use sebdb_types::{Column, DataType, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    UpdateWhereAEq(i64, i64), // set b = _ where a = _
    DeleteWhereALe(i64),
    CreateIndexA,
    CreateIndexB,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (-20i64..20, -20i64..20).prop_map(|(a, b)| Op::Insert(a, b)),
            (-20i64..20, -20i64..20).prop_map(|(a, b)| Op::UpdateWhereAEq(a, b)),
            (-20i64..20).prop_map(Op::DeleteWhereALe),
            Just(Op::CreateIndexA),
            Just(Op::CreateIndexB),
        ],
        0..60,
    )
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_matches_vec_model(ops in ops(), probe_lo in -20i64..20, probe_len in 0i64..20) {
        let mut table = OffTable::new(
            "t",
            vec![Column::new("a", DataType::Int), Column::new("b", DataType::Int)],
        );
        let mut model: Vec<(i64, i64)> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(a, b) => {
                    table.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
                    model.push((a, b));
                }
                Op::UpdateWhereAEq(a, new_b) => {
                    let pred = Predicate::Compare { column: 0, op: CmpOp::Eq, value: Value::Int(a) };
                    let n = table.update(&pred, 1, Value::Int(new_b)).unwrap();
                    let mut m = 0;
                    for row in model.iter_mut() {
                        if row.0 == a {
                            row.1 = new_b;
                            m += 1;
                        }
                    }
                    prop_assert_eq!(n, m);
                }
                Op::DeleteWhereALe(a) => {
                    let pred = Predicate::Compare { column: 0, op: CmpOp::Le, value: Value::Int(a) };
                    let n = table.delete(&pred);
                    let before = model.len();
                    model.retain(|row| row.0 > a);
                    prop_assert_eq!(n, before - model.len());
                }
                Op::CreateIndexA => table.create_index(0),
                Op::CreateIndexB => table.create_index(1),
            }
            prop_assert_eq!(table.len(), model.len());
        }

        // Range select must agree (order-insensitive).
        let probe_hi = probe_lo + probe_len;
        let pred = Predicate::Between { column: 0, lo: Value::Int(probe_lo), hi: Value::Int(probe_hi) };
        let got = sorted(table.select(&pred));
        let want = sorted(
            model.iter()
                .filter(|(a, _)| (probe_lo..=probe_hi).contains(a))
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
                .collect(),
        );
        prop_assert_eq!(got, want);

        // min / max / distinct / sorted_by must agree too.
        let want_min = model.iter().map(|(a, _)| *a).min().map(Value::Int);
        prop_assert_eq!(table.min(0), want_min);
        let want_max = model.iter().map(|(a, _)| *a).max().map(Value::Int);
        prop_assert_eq!(table.max(0), want_max);
        let mut want_distinct: Vec<i64> = model.iter().map(|(a, _)| *a).collect();
        want_distinct.sort_unstable();
        want_distinct.dedup();
        prop_assert_eq!(
            table.distinct(0),
            want_distinct.into_iter().map(Value::Int).collect::<Vec<_>>()
        );
        let by_a = table.sorted_by(0);
        prop_assert!(by_a.windows(2).all(|w| w[0][0] <= w[1][0]));
        prop_assert_eq!(by_a.len(), model.len());
    }
}
