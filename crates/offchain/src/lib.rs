//! # sebdb-offchain
//!
//! A mini-RDBMS standing in for the local MySQL instance each SEBDB
//! node uses for private off-chain data (§IV-A). Provides exactly what
//! the on-off-chain join (Algorithm 3) needs from the RDBMS side —
//! predicate selects, per-column B-tree indexes, `min`/`max`,
//! `DISTINCT`, and sorted retrieval on the join attribute — plus the
//! usual insert/update/delete. See DESIGN.md §4 for the substitution
//! note.

#![warn(missing_docs)]

pub mod engine;
pub mod predicate;
pub mod table;

pub use engine::{OffchainConnection, OffchainDb};
pub use predicate::{CmpOp, Predicate};
pub use table::OffTable;
