//! Off-chain tables: heap rows plus optional per-column B-tree indexes.

use crate::predicate::Predicate;
use sebdb_types::{Column, TypeError, Value};
use std::collections::BTreeMap;

/// One off-chain table.
#[derive(Debug)]
pub struct OffTable {
    /// Table name.
    pub name: String,
    /// Columns, in declared order.
    pub columns: Vec<Column>,
    rows: Vec<Option<Vec<Value>>>,
    live: usize,
    /// Secondary indexes: column position → value → row ids.
    indexes: BTreeMap<usize, BTreeMap<Value, Vec<usize>>>,
}

impl OffTable {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        OffTable {
            name: name.into(),
            columns,
            rows: Vec::new(),
            live: 0,
            indexes: BTreeMap::new(),
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Builds a secondary index on column `col` (idempotent).
    pub fn create_index(&mut self, col: usize) {
        if self.indexes.contains_key(&col) {
            return;
        }
        let mut idx: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if let Some(row) = row {
                idx.entry(row[col].clone()).or_default().push(rid);
            }
        }
        self.indexes.insert(col, idx);
    }

    /// Inserts a row after schema validation and coercion.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<usize, TypeError> {
        if values.len() != self.columns.len() {
            return Err(TypeError::SchemaMismatch {
                detail: format!(
                    "table {} expects {} values, got {}",
                    self.name,
                    self.columns.len(),
                    values.len()
                ),
            });
        }
        let row: Vec<Value> = values
            .into_iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce(c.dtype))
            .collect::<Result<_, _>>()?;
        let rid = self.rows.len();
        for (col, idx) in self.indexes.iter_mut() {
            idx.entry(row[*col].clone()).or_default().push(rid);
        }
        self.rows.push(Some(row));
        self.live += 1;
        Ok(rid)
    }

    /// Rows matching `pred`, using an index when the predicate is a
    /// single-column range on an indexed column. The fallback heap scan
    /// evaluates the predicate across workers in row-range chunks;
    /// results keep heap (insertion) order, matching the sequential
    /// scan.
    pub fn select(&self, pred: &Predicate) -> Vec<Vec<Value>> {
        if let Some((col, lo, hi)) = pred.index_range() {
            if let Some(idx) = self.indexes.get(&col) {
                return idx
                    .range(lo..=hi)
                    .flat_map(|(_, rids)| rids.iter())
                    .filter_map(|&rid| self.rows[rid].clone())
                    .collect();
            }
        }
        sebdb_parallel::par_chunks(
            self.rows.len(),
            sebdb_parallel::max_threads(),
            1024,
            |range| {
                self.rows[range]
                    .iter()
                    .flatten()
                    .filter(|r| pred.eval(r))
                    .cloned()
                    .collect::<Vec<_>>()
            },
        )
        .into_iter()
        .flatten()
        .collect()
    }

    /// Updates rows matching `pred`, assigning `new` to column `col`;
    /// returns the number of rows changed.
    pub fn update(&mut self, pred: &Predicate, col: usize, new: Value) -> Result<usize, TypeError> {
        let new = new.coerce(self.columns[col].dtype)?;
        let mut changed = 0;
        for rid in 0..self.rows.len() {
            let Some(row) = &self.rows[rid] else { continue };
            if !pred.eval(row) {
                continue;
            }
            let old = row[col].clone();
            if let Some(idx) = self.indexes.get_mut(&col) {
                if let Some(rids) = idx.get_mut(&old) {
                    rids.retain(|&r| r != rid);
                }
                idx.entry(new.clone()).or_default().push(rid);
            }
            self.rows[rid].as_mut().unwrap()[col] = new.clone();
            changed += 1;
        }
        Ok(changed)
    }

    /// Deletes rows matching `pred`; returns the number removed.
    pub fn delete(&mut self, pred: &Predicate) -> usize {
        let mut removed = 0;
        for rid in 0..self.rows.len() {
            let Some(row) = &self.rows[rid] else { continue };
            if !pred.eval(row) {
                continue;
            }
            for (col, idx) in self.indexes.iter_mut() {
                if let Some(rids) = idx.get_mut(&row[*col]) {
                    rids.retain(|&r| r != rid);
                }
            }
            self.rows[rid] = None;
            self.live -= 1;
            removed += 1;
        }
        removed
    }

    /// Minimum value of column `col` over live rows (ignores NULL).
    pub fn min(&self, col: usize) -> Option<Value> {
        self.chunked_extreme(col, false)
    }

    /// Maximum value of column `col` over live rows (ignores NULL).
    pub fn max(&self, col: usize) -> Option<Value> {
        self.chunked_extreme(col, true)
    }

    /// Per-chunk min/max across workers, reduced to the global extreme
    /// (Algorithm 3 calls these to prune blocks before the on/off
    /// join, so they sit on the query hot path).
    fn chunked_extreme(&self, col: usize, take_max: bool) -> Option<Value> {
        sebdb_parallel::par_chunks(
            self.rows.len(),
            sebdb_parallel::max_threads(),
            4096,
            |range| {
                let vals = self.rows[range]
                    .iter()
                    .flatten()
                    .map(|r| &r[col])
                    .filter(|v| **v != Value::Null);
                if take_max {
                    vals.max().cloned()
                } else {
                    vals.min().cloned()
                }
            },
        )
        .into_iter()
        .flatten()
        .reduce(|a, b| if (b > a) == take_max { b } else { a })
    }

    /// Distinct values of column `col` in ascending order — Algorithm
    /// 3's discrete case "queries off-chain database for unique values
    /// of join attribute".
    pub fn distinct(&self, col: usize) -> Vec<Value> {
        if let Some(idx) = self.indexes.get(&col) {
            return idx
                .iter()
                .filter(|(_, rids)| !rids.is_empty())
                .map(|(v, _)| v.clone())
                .collect();
        }
        let mut vs: Vec<Value> = self.column_values(col).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    /// All live rows sorted ascending by column `col` — "the query
    /// results from off-chain data are sorted on join attribute" so the
    /// per-block sort-merge join of Algorithm 3 can run directly.
    pub fn sorted_by(&self, col: usize) -> Vec<Vec<Value>> {
        if let Some(idx) = self.indexes.get(&col) {
            return idx
                .values()
                .flat_map(|rids| rids.iter())
                .filter_map(|&rid| self.rows[rid].clone())
                .collect();
        }
        let mut rows: Vec<Vec<Value>> = self.rows.iter().flatten().cloned().collect();
        rows.sort_by(|a, b| a[col].cmp(&b[col]));
        rows
    }

    fn column_values(&self, col: usize) -> impl Iterator<Item = Value> + '_ {
        self.rows
            .iter()
            .flatten()
            .map(move |r| r[col].clone())
            .filter(|v| *v != Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use sebdb_types::DataType;

    fn donor_info() -> OffTable {
        let mut t = OffTable::new(
            "donorinfo",
            vec![
                Column::new("donor", DataType::Str),
                Column::new("age", DataType::Int),
                Column::new("balance", DataType::Decimal),
            ],
        );
        for (name, age, bal) in [
            ("alice", 30, 500),
            ("bob", 25, 100),
            ("carol", 35, 900),
            ("dave", 25, 300),
        ] {
            t.insert(vec![Value::str(name), Value::Int(age), Value::decimal(bal)])
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_validates_schema() {
        let mut t = donor_info();
        assert!(t.insert(vec![Value::str("x")]).is_err());
        assert!(t
            .insert(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .is_err());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn select_scan_and_index_agree() {
        let mut t = donor_info();
        let pred = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::Int(25),
        };
        let scanned = t.select(&pred);
        t.create_index(1);
        let indexed = t.select(&pred);
        assert_eq!(scanned.len(), 2);
        let mut a = scanned.clone();
        let mut b = indexed.clone();
        a.sort_by(|x, y| x[0].cmp(&y[0]));
        b.sort_by(|x, y| x[0].cmp(&y[0]));
        assert_eq!(a, b);
    }

    #[test]
    fn min_max_distinct() {
        let t = donor_info();
        assert_eq!(t.min(1), Some(Value::Int(25)));
        assert_eq!(t.max(1), Some(Value::Int(35)));
        assert_eq!(
            t.distinct(1),
            vec![Value::Int(25), Value::Int(30), Value::Int(35)]
        );
    }

    #[test]
    fn sorted_by_returns_sorted_rows() {
        let mut t = donor_info();
        let rows = t.sorted_by(2);
        let bals: Vec<&Value> = rows.iter().map(|r| &r[2]).collect();
        assert!(bals.windows(2).all(|w| w[0] <= w[1]));
        // With an index the same order comes from the index.
        t.create_index(2);
        assert_eq!(t.sorted_by(2), rows);
    }

    #[test]
    fn update_maintains_index() {
        let mut t = donor_info();
        t.create_index(1);
        let pred = Predicate::Compare {
            column: 0,
            op: CmpOp::Eq,
            value: Value::str("bob"),
        };
        let n = t.update(&pred, 1, Value::Int(26)).unwrap();
        assert_eq!(n, 1);
        let by_age = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::Int(26),
        };
        assert_eq!(t.select(&by_age).len(), 1);
        let old_age = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::Int(25),
        };
        assert_eq!(t.select(&old_age).len(), 1); // dave only
    }

    #[test]
    fn delete_maintains_index_and_count() {
        let mut t = donor_info();
        t.create_index(1);
        let pred = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::Int(25),
        };
        assert_eq!(t.delete(&pred), 2);
        assert_eq!(t.len(), 2);
        assert!(t.select(&pred).is_empty());
        assert_eq!(t.distinct(1), vec![Value::Int(30), Value::Int(35)]);
    }

    #[test]
    fn parallel_scan_matches_sequential_order_and_content() {
        // Big enough to split into several worker chunks.
        let mut t = OffTable::new(
            "big",
            vec![
                Column::new("k", DataType::Int),
                Column::new("v", DataType::Int),
            ],
        );
        for i in 0..5000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 7)]).unwrap();
        }
        let pred = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::Int(3),
        };
        let rows = t.select(&pred);
        let expected: Vec<i64> = (0..5000).filter(|i| i % 7 == 3).collect();
        assert_eq!(
            rows.iter()
                .map(|r| match r[0] {
                    Value::Int(k) => k,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            expected,
            "parallel scan must keep heap order"
        );
        assert_eq!(t.min(0), Some(Value::Int(0)));
        assert_eq!(t.max(0), Some(Value::Int(4999)));
    }

    #[test]
    fn between_select() {
        let t = donor_info();
        let pred = Predicate::Between {
            column: 2,
            lo: Value::decimal(200),
            hi: Value::decimal(600),
        };
        let rows = t.select(&pred);
        assert_eq!(rows.len(), 2); // alice 500, dave 300
    }
}
