//! Row predicates for the off-chain engine.

use sebdb_types::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator. Any comparison with NULL is false
    /// (SQL-ish three-valued logic collapsed to false).
    pub fn eval(&self, left: &Value, right: &Value) -> bool {
        if *left == Value::Null || *right == Value::Null {
            return false;
        }
        let ord = left.cmp_total(right);
        match self {
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
        }
    }
}

/// A predicate over one row, referencing columns by position.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `col <op> literal`.
    Compare {
        /// Column position.
        column: usize,
        /// Operator.
        op: CmpOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column position.
        column: usize,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against `row`.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Compare { column, op, value } => {
                row.get(*column).is_some_and(|v| op.eval(v, value))
            }
            Predicate::Between { column, lo, hi } => row
                .get(*column)
                .is_some_and(|v| *v != Value::Null && v >= lo && v <= hi),
            Predicate::And(a, b) => a.eval(row) && b.eval(row),
            Predicate::Or(a, b) => a.eval(row) || b.eval(row),
        }
    }

    /// If the predicate constrains a single column to a closed range,
    /// returns `(column, lo, hi)` — what an index scan can serve.
    pub fn index_range(&self) -> Option<(usize, Value, Value)> {
        match self {
            Predicate::Compare {
                column,
                op: CmpOp::Eq,
                value,
            } => Some((*column, value.clone(), value.clone())),
            Predicate::Between { column, lo, hi } => Some((*column, lo.clone(), hi.clone())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::Int(5), Value::str("bob"), Value::decimal(100)]
    }

    #[test]
    fn compare_ops() {
        let r = row();
        for (op, want) in [
            (CmpOp::Eq, true),
            (CmpOp::Ne, false),
            (CmpOp::Lt, false),
            (CmpOp::Le, true),
            (CmpOp::Gt, false),
            (CmpOp::Ge, true),
        ] {
            let p = Predicate::Compare {
                column: 0,
                op,
                value: Value::Int(5),
            };
            assert_eq!(p.eval(&r), want, "{op:?}");
        }
    }

    #[test]
    fn null_comparisons_false() {
        let r = vec![Value::Null];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Gt] {
            assert!(!Predicate::Compare {
                column: 0,
                op,
                value: Value::Int(1)
            }
            .eval(&r));
        }
        assert!(!Predicate::Between {
            column: 0,
            lo: Value::Int(0),
            hi: Value::Int(10)
        }
        .eval(&r));
    }

    #[test]
    fn between_and_or() {
        let r = row();
        let between = Predicate::Between {
            column: 2,
            lo: Value::decimal(50),
            hi: Value::decimal(150),
        };
        assert!(between.eval(&r));
        let name = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::str("alice"),
        };
        assert!(!Predicate::And(Box::new(between.clone()), Box::new(name.clone())).eval(&r));
        assert!(Predicate::Or(Box::new(between), Box::new(name)).eval(&r));
    }

    #[test]
    fn index_range_extraction() {
        let eq = Predicate::Compare {
            column: 1,
            op: CmpOp::Eq,
            value: Value::str("x"),
        };
        assert_eq!(
            eq.index_range(),
            Some((1, Value::str("x"), Value::str("x")))
        );
        let lt = Predicate::Compare {
            column: 1,
            op: CmpOp::Lt,
            value: Value::str("x"),
        };
        assert_eq!(lt.index_range(), None);
        assert_eq!(Predicate::True.index_range(), None);
    }

    #[test]
    fn out_of_range_column_is_false() {
        let p = Predicate::Compare {
            column: 9,
            op: CmpOp::Eq,
            value: Value::Int(1),
        };
        assert!(!p.eval(&row()));
    }
}
