//! The off-chain database engine.
//!
//! Each SEBDB node pairs the chain with a local RDBMS holding private
//! (off-chain) data (§IV-A: "Off-chain data are managed by a local
//! RDBMS, and accessed via an interface (ODBC, JDBC, etc.)").
//! [`OffchainDb`] plays that role; [`OffchainConnection`] is the
//! ODBC/JDBC-shaped access interface the query engine talks to, so the
//! engine never touches tables directly.

use crate::predicate::Predicate;
use crate::table::OffTable;
use parking_lot::RwLock;
use sebdb_types::{Column, TypeError, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// A multi-table off-chain database.
#[derive(Default)]
pub struct OffchainDb {
    tables: RwLock<HashMap<String, Arc<RwLock<OffTable>>>>,
}

impl OffchainDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table.
    pub fn create_table(&self, name: &str, columns: Vec<Column>) -> Result<(), TypeError> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(TypeError::DuplicateTable {
                table: name.to_owned(),
            });
        }
        tables.insert(key, Arc::new(RwLock::new(OffTable::new(name, columns))));
        Ok(())
    }

    fn table(&self, name: &str) -> Result<Arc<RwLock<OffTable>>, TypeError> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| TypeError::NoSuchTable {
                table: name.to_owned(),
            })
    }

    /// Opens a connection (the ODBC/JDBC stand-in).
    pub fn connect(self: &Arc<Self>) -> OffchainConnection {
        OffchainConnection {
            db: Arc::clone(self),
        }
    }
}

/// A connection handle to the off-chain database.
#[derive(Clone)]
pub struct OffchainConnection {
    db: Arc<OffchainDb>,
}

impl OffchainConnection {
    /// Inserts a row.
    pub fn insert(&self, table: &str, values: Vec<Value>) -> Result<(), TypeError> {
        self.db.table(table)?.write().insert(values)?;
        Ok(())
    }

    /// Selects rows matching `pred`.
    pub fn select(&self, table: &str, pred: &Predicate) -> Result<Vec<Vec<Value>>, TypeError> {
        Ok(self.db.table(table)?.read().select(pred))
    }

    /// Updates matching rows; returns the count.
    pub fn update(
        &self,
        table: &str,
        pred: &Predicate,
        column: &str,
        value: Value,
    ) -> Result<usize, TypeError> {
        let t = self.db.table(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: column.to_owned(),
            })?;
        t.update(pred, col, value)
    }

    /// Deletes matching rows; returns the count.
    pub fn delete(&self, table: &str, pred: &Predicate) -> Result<usize, TypeError> {
        Ok(self.db.table(table)?.write().delete(pred))
    }

    /// Builds a secondary index on `column`.
    pub fn create_index(&self, table: &str, column: &str) -> Result<(), TypeError> {
        let t = self.db.table(table)?;
        let mut t = t.write();
        let col = t
            .column_index(column)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: column.to_owned(),
            })?;
        t.create_index(col);
        Ok(())
    }

    /// `(min, max)` of `column` — the range Algorithm 3 uses to prune
    /// blocks. `None` when the table is empty.
    pub fn min_max(&self, table: &str, column: &str) -> Result<Option<(Value, Value)>, TypeError> {
        let t = self.db.table(table)?;
        let t = t.read();
        let col = t
            .column_index(column)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: column.to_owned(),
            })?;
        Ok(t.min(col).zip(t.max(col)))
    }

    /// Distinct values of `column`, ascending.
    pub fn distinct(&self, table: &str, column: &str) -> Result<Vec<Value>, TypeError> {
        let t = self.db.table(table)?;
        let t = t.read();
        let col = t
            .column_index(column)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: column.to_owned(),
            })?;
        Ok(t.distinct(col))
    }

    /// All rows sorted by `column`, plus that column's position —
    /// the sorted stream the on-off sort-merge join consumes.
    pub fn sorted_by(
        &self,
        table: &str,
        column: &str,
    ) -> Result<(usize, Vec<Vec<Value>>), TypeError> {
        let t = self.db.table(table)?;
        let t = t.read();
        let col = t
            .column_index(column)
            .ok_or_else(|| TypeError::NoSuchColumn {
                column: column.to_owned(),
            })?;
        Ok((col, t.sorted_by(col)))
    }

    /// Column metadata for `table`.
    pub fn columns(&self, table: &str) -> Result<Vec<Column>, TypeError> {
        Ok(self.db.table(table)?.read().columns.clone())
    }

    /// Row count.
    pub fn count(&self, table: &str) -> Result<usize, TypeError> {
        Ok(self.db.table(table)?.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use sebdb_types::DataType;

    fn db() -> Arc<OffchainDb> {
        let db = Arc::new(OffchainDb::new());
        db.create_table(
            "doneeinfo",
            vec![
                Column::new("donee", DataType::Str),
                Column::new("income", DataType::Decimal),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let db = db();
        let conn = db.connect();
        conn.insert("doneeinfo", vec![Value::str("tom"), Value::decimal(120)])
            .unwrap();
        conn.insert("doneeinfo", vec![Value::str("ann"), Value::decimal(80)])
            .unwrap();
        let rows = conn
            .select(
                "doneeinfo",
                &Predicate::Compare {
                    column: 1,
                    op: CmpOp::Lt,
                    value: Value::decimal(100),
                },
            )
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("ann"));
    }

    #[test]
    fn duplicate_table_rejected() {
        let db = db();
        assert!(matches!(
            db.create_table("DoneeInfo", vec![]),
            Err(TypeError::DuplicateTable { .. })
        ));
    }

    #[test]
    fn missing_table_and_column_errors() {
        let db = db();
        let conn = db.connect();
        assert!(matches!(
            conn.select("nope", &Predicate::True),
            Err(TypeError::NoSuchTable { .. })
        ));
        assert!(matches!(
            conn.min_max("doneeinfo", "salary"),
            Err(TypeError::NoSuchColumn { .. })
        ));
    }

    #[test]
    fn min_max_and_sorted() {
        let db = db();
        let conn = db.connect();
        for (n, v) in [("a", 5), ("b", 1), ("c", 9)] {
            conn.insert("doneeinfo", vec![Value::str(n), Value::decimal(v)])
                .unwrap();
        }
        assert_eq!(
            conn.min_max("doneeinfo", "income").unwrap(),
            Some((Value::decimal(1), Value::decimal(9)))
        );
        let (col, rows) = conn.sorted_by("doneeinfo", "income").unwrap();
        assert_eq!(col, 1);
        assert!(rows.windows(2).all(|w| w[0][1] <= w[1][1]));
        assert_eq!(conn.count("doneeinfo").unwrap(), 3);
    }

    #[test]
    fn empty_table_min_max_none() {
        let db = db();
        assert_eq!(db.connect().min_max("doneeinfo", "income").unwrap(), None);
    }

    #[test]
    fn connection_is_cloneable_and_shares_state() {
        let db = db();
        let c1 = db.connect();
        let c2 = c1.clone();
        c1.insert("doneeinfo", vec![Value::str("x"), Value::decimal(1)])
            .unwrap();
        assert_eq!(c2.count("doneeinfo").unwrap(), 1);
    }
}
