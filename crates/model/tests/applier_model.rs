//! Model of the relation-sharded applier lanes
//! (crates/core/src/pipeline.rs + ledger.rs): a persister stage fans
//! each persisted block out to every lane over per-lane depth-1
//! channels; each lane indexes its shards and advances its slot of the
//! applied-height vector; the scalar applied height readers observe is
//! the minimum over the vector, advanced under the height-watch lock.
//!
//! Invariants under test:
//! - **Per-lane order**: every lane sees blocks in exactly sealed chain
//!   order (its channel order), never skipping or reordering.
//! - **Applied-height-vector monotonicity**: the scalar applied height
//!   never exceeds any lane's height (applied = min over lanes), never
//!   exceeds the persisted height, and never moves backwards.
//! - **Lane-panic poison**: a lane that dies mid-block poisons health
//!   and wakes waiters — modelled with no-timeout waits so a lost
//!   wakeup is a hard deadlock.
//! - **Crash-at-lane-boundary recovery**: restart replays every lane
//!   from the persisted chain and the applied height catches up.
//!
//! Seeded negative models (a reordering persister; a stale height
//! vector that advances on max instead of min) prove the checker
//! actually catches the violations.

use sebdb_model::{channel, check, explore, race::Tracked, sync, thread, Options};
use std::sync::Arc;

const LANES: usize = 2;
const BLOCKS: u64 = 2;

/// The model ledger: the persisted height, the per-lane applied-height
/// vector, the scalar (min) applied height, and the poison flag — all
/// behind one lock standing in for `height_watch`, with a condvar for
/// height waiters.
#[derive(Hash)]
struct State {
    persisted: Tracked<u64>,
    lane_heights: [Tracked<u64>; LANES],
    applied: Tracked<u64>,
    poisoned: Tracked<bool>,
}

struct Ledger {
    state: sync::Mutex<State>,
    advanced: sync::Condvar,
}

impl Ledger {
    fn new() -> Arc<Ledger> {
        Arc::new(Ledger {
            state: sync::Mutex::new(State {
                persisted: Tracked::new(0),
                lane_heights: std::array::from_fn(|_| Tracked::new(0)),
                applied: Tracked::new(0),
                poisoned: Tracked::new(false),
            }),
            advanced: sync::Condvar::new(),
        })
    }

    fn check_invariant(s: &State) {
        let min = s.lane_heights.iter().map(Tracked::get).min().unwrap();
        assert!(
            s.applied.get() <= min,
            "applied height ran ahead of a lane: applied={} lanes={:?}",
            s.applied.get(),
            s.lane_heights
        );
        let persisted = s.persisted.get();
        for (lane, h) in s.lane_heights.iter().enumerate() {
            let h = h.get();
            assert!(
                h <= persisted,
                "lane {lane} indexed unpersisted height {h} (persisted={persisted})"
            );
        }
    }

    /// `Ledger::lane_applied`: store the lane's height, advance the
    /// scalar applied height to the vector min (or max, for the seeded
    /// stale-vector bug), notify waiters. One critical section, as in
    /// the real code.
    fn lane_applied(&self, lane: usize, height: u64, stale_max_bug: bool) {
        let s = self.state.lock();
        s.lane_heights[lane].set(height);
        let next = if stale_max_bug {
            s.lane_heights.iter().map(Tracked::get).max().unwrap()
        } else {
            s.lane_heights.iter().map(Tracked::get).min().unwrap()
        };
        assert!(
            next >= s.applied.get(),
            "applied height moved backwards: {} -> {next}",
            s.applied.get()
        );
        s.applied.set(next);
        Ledger::check_invariant(&s);
        drop(s);
        self.advanced.notify_all();
    }
}

/// Persister stage: records each block persisted, then fans it out to
/// every lane in sealed order (reversed for the seeded reorder bug —
/// everything is persisted up front there so only the ordering
/// violation can fire). Stops when any lane is gone (poison / crash
/// model).
fn run_persister(ledger: &Ledger, lanes: &[channel::Sender<u64>], reorder: bool) {
    let heights: Vec<u64> = if reorder {
        ledger.state.lock().persisted.set(BLOCKS);
        (1..=BLOCKS).rev().collect()
    } else {
        (1..=BLOCKS).collect()
    };
    for &h in &heights {
        if !reorder {
            ledger.state.lock().persisted.set(h);
        }
        for tx in lanes {
            if tx.send(h).is_err() {
                return;
            }
        }
    }
}

/// One applier lane: asserts blocks arrive in exactly chain order,
/// then advances its applied-height slot.
fn run_lane(ledger: &Ledger, lane: usize, rx: &channel::Receiver<u64>, stale_max_bug: bool) {
    let mut last = 0u64;
    while let Ok(h) = rx.recv() {
        assert_eq!(
            h,
            last + 1,
            "lane {lane} received height {h} after {last}: per-lane order broken"
        );
        last = h;
        ledger.lane_applied(lane, h, stale_max_bug);
    }
}

fn main_model(ledger: Arc<Ledger>, reorder: bool, stale_max_bug: bool) {
    let mut txs = Vec::new();
    let mut lanes = Vec::new();
    for lane in 0..LANES {
        let (tx, rx) = channel::bounded::<u64>(1);
        txs.push(tx);
        let ledger = Arc::clone(&ledger);
        lanes.push(thread::spawn(move || {
            run_lane(&ledger, lane, &rx, stale_max_bug)
        }));
    }
    let persister = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || run_persister(&ledger, &txs, reorder))
    };
    // Cross-relation reader: waits on the min applied height and checks
    // the vector invariant at every wakeup the scheduler fires.
    let waiter = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            let mut guard = ledger.state.lock();
            let mut prev = guard.applied.get();
            while guard.applied.get() < BLOCKS {
                Ledger::check_invariant(&guard);
                assert!(guard.applied.get() >= prev, "applied height went backwards");
                prev = guard.applied.get();
                ledger
                    .advanced
                    .wait_timeout(&mut guard, std::time::Duration::from_millis(50));
            }
            Ledger::check_invariant(&guard);
        })
    };
    persister.join();
    for lane in lanes {
        lane.join();
    }
    waiter.join();
    let s = ledger.state.lock();
    assert_eq!(s.applied.get(), BLOCKS);
    assert!(s.lane_heights.iter().all(|h| h.get() == BLOCKS));
    Ledger::check_invariant(&s);
}

#[test]
fn lane_order_and_height_vector_hold_on_every_schedule() {
    let report = check(
        "applier-lanes-invariant",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || main_model(Ledger::new(), false, false),
    );
    assert!(
        report.schedules >= 500,
        "expected >= 500 schedules, explored {}",
        report.schedules
    );
    assert!(
        report.distinct_traces >= 500,
        "expected >= 500 distinct traces, saw {}",
        report.distinct_traces
    );
    assert_eq!(
        report.races_found, 0,
        "mainline applier model must be race-free"
    );
}

#[test]
fn reordered_lane_delivery_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || main_model(Ledger::new(), true, false),
    );
    let failure = report
        .failure
        .expect("the reordered-lane bug must be caught");
    assert!(
        failure.message.contains("per-lane order broken"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn stale_height_vector_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || main_model(Ledger::new(), false, true),
    );
    let failure = report
        .failure
        .expect("the max-instead-of-min stale vector bug must be caught");
    assert!(
        failure
            .message
            .contains("applied height ran ahead of a lane"),
        "unexpected failure: {}",
        failure.message
    );
}

/// A lane "panics" mid-block (the PoisonOnPanic drop guard: poison the
/// health flag, wake every waiter, tear the lane down). Waiters block
/// *without* a timeout so a lost poison wakeup is a hard deadlock, and
/// the applied height — the min over lanes — must never pass the dead
/// lane even though the surviving lane keeps going.
#[test]
fn lane_panic_poison_wakes_waiters_and_pins_applied() {
    check(
        "applier-lane-poison",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let ledger = Ledger::new();
            let mut txs = Vec::new();
            // Lane 0 dies on block 1; lane 1 applies everything it gets.
            let (tx0, rx0) = channel::bounded::<u64>(1);
            let (tx1, rx1) = channel::bounded::<u64>(1);
            txs.push(tx0);
            txs.push(tx1);
            let lane0 = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    if rx0.recv().is_ok() {
                        // Panic mid-block: drop guard poisons and wakes.
                        ledger.state.lock().poisoned.set(true);
                        ledger.advanced.notify_all();
                    }
                })
            };
            let lane1 = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_lane(&ledger, 1, &rx1, false))
            };
            let persister = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_persister(&ledger, &txs, false))
            };
            let waiter = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    let mut guard = ledger.state.lock();
                    while guard.applied.get() < BLOCKS && !guard.poisoned.get() {
                        Ledger::check_invariant(&guard);
                        // No timeout: a lost poison wakeup deadlocks.
                        ledger.advanced.wait(&mut guard);
                    }
                    guard.poisoned.get()
                })
            };
            persister.join();
            lane0.join();
            lane1.join();
            let saw_poison = waiter.join();
            assert!(saw_poison, "waiter exited without poison at h < BLOCKS");
            let s = ledger.state.lock();
            assert!(s.poisoned.get());
            assert_eq!(s.lane_heights[0].get(), 0, "dead lane never applied");
            assert!(
                s.applied.get() == 0,
                "applied (min over lanes) pinned by dead lane"
            );
            Ledger::check_invariant(&s);
        },
    );
}

/// Lanes crash at a block boundary with the vector uneven (one lane a
/// block behind). Recovery (restart) replays every lane from the
/// persisted chain — as `Ledger::new` re-indexes persisted blocks —
/// and the applied height must equal the persisted height afterwards.
#[test]
fn crash_at_lane_boundary_recovers() {
    check(
        "applier-lane-crash-boundary",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let ledger = Ledger::new();
            let mut txs = Vec::new();
            let (tx0, rx0) = channel::bounded::<u64>(1);
            let (tx1, rx1) = channel::bounded::<u64>(1);
            txs.push(tx0);
            txs.push(tx1);
            // Lane 0 completes only block 1, then crashes; lane 1 runs.
            let lane0 = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    if let Ok(h) = rx0.recv() {
                        ledger.lane_applied(0, h, false);
                    }
                })
            };
            let lane1 = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_lane(&ledger, 1, &rx1, false))
            };
            let persister = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_persister(&ledger, &txs, false))
            };
            persister.join();
            lane0.join();
            lane1.join();
            // Restart path: every persisted block is re-indexed into
            // every lane's shards; the vector and scalar catch up.
            {
                let s = ledger.state.lock();
                Ledger::check_invariant(&s);
                let persisted = s.persisted.get();
                for h in s.lane_heights.iter() {
                    h.set(persisted);
                }
                s.applied.set(persisted);
                Ledger::check_invariant(&s);
            }
            ledger.advanced.notify_all();
            let s = ledger.state.lock();
            assert_eq!(
                s.applied.get(),
                s.persisted.get(),
                "recovery must catch applied up"
            );
            assert!(s.lane_heights.iter().all(|h| h.get() == s.persisted.get()));
        },
    );
}
