//! Model of the partitioned append protocol
//! (crates/storage/blockstore.rs): per-partition extent and offsets
//! writes fan out across threads, and the chain-order manifest record
//! is the *commit point*, written only after every partition write
//! landed.
//!
//! Invariants under test: a recovery snapshot taken at any point (any
//! crash prefix of any schedule) never finds a manifest record whose
//! partition extents outrun the partition files — so restart replay's
//! longest-valid-prefix cut never has to drop a record the correct
//! protocol committed. The seeded negative reorders the protocol
//! (manifest written before the partition data is durable) and proves
//! the explorer catches the reordering. A deterministic ladder crashes
//! after every single write-order boundary and checks the recovered
//! height. The handle-cache model extends the segment open-once proof
//! across partition directories.

use sebdb_model::race::Tracked;
use sebdb_model::{check, explore, sync, thread, Options};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PARTS: usize = 2;

/// The on-disk state under model: per-partition extent bytes and
/// offsets records (monotone counters — segment appends only grow the
/// file), plus the manifest, each block entry recording the extent end
/// offset it expects per partition.
struct Disk {
    /// Deliberately atomics, not `Tracked` cells: these model durable
    /// file lengths that the recovery observer reads *concurrently
    /// with the writers by design* (a crashed reader sees whatever
    /// bytes landed), exactly the monotone-observation exemption of
    /// DESIGN §14 — tracking them would flag the intended race.
    part_len: Vec<AtomicU64>,
    offsets_len: Vec<AtomicU64>,
    manifest: sync::Mutex<Tracked<Manifest>>,
}

/// Chain-order manifest: one entry per committed block, recording the
/// `(partition, extent-end)` pairs that block's tuples landed at.
type Manifest = Vec<Vec<(usize, u64)>>;

impl Disk {
    fn new() -> Arc<Disk> {
        Arc::new(Disk {
            part_len: (0..PARTS).map(|_| AtomicU64::new(0)).collect(),
            offsets_len: (0..PARTS).map(|_| AtomicU64::new(0)).collect(),
            manifest: sync::Mutex::new(Tracked::new(Vec::new())),
        })
    }

    /// Appends one block touching every partition (extent size 1), the
    /// real protocol: partition writers fan out, each writing its
    /// extent then its offsets record; the manifest record lands only
    /// after joining them all.
    fn append_block(self: &Arc<Self>, bid: u64) {
        let writers: Vec<_> = (0..PARTS)
            .map(|p| {
                let disk = Arc::clone(self);
                thread::spawn(move || {
                    disk.part_len[p].fetch_add(1, Ordering::SeqCst);
                    disk.offsets_len[p].fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in writers {
            w.join();
        }
        self.manifest
            .lock()
            .with_mut(|m| m.push((0..PARTS).map(|p| (p, bid + 1)).collect()));
    }

    /// The reordered (buggy) protocol the commit-point ordering exists
    /// to rule out: the manifest record reaches disk *before* the
    /// partition writers run.
    fn append_block_reordered(self: &Arc<Self>, bid: u64) {
        self.manifest
            .lock()
            .with_mut(|m| m.push((0..PARTS).map(|p| (p, bid + 1)).collect()));
        let writers: Vec<_> = (0..PARTS)
            .map(|p| {
                let disk = Arc::clone(self);
                thread::spawn(move || {
                    disk.part_len[p].fetch_add(1, Ordering::SeqCst);
                    disk.offsets_len[p].fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for w in writers {
            w.join();
        }
    }

    /// Restart replay's validation cut: reads the manifest, then the
    /// partition file lengths (exactly a crashed process would — the
    /// files can only have *more* bytes than any state the manifest
    /// reader saw), and keeps the longest prefix of records whose
    /// extents all physically exist.
    fn recover(&self) -> (usize, usize) {
        let manifest = self.manifest.lock().with(Clone::clone);
        let lens: Vec<u64> = (0..PARTS)
            .map(|p| self.part_len[p].load(Ordering::SeqCst))
            .collect();
        let mut keep = 0;
        for entry in &manifest {
            if entry.iter().all(|&(p, end)| end <= lens[p]) {
                keep += 1;
            } else {
                break;
            }
        }
        (keep, manifest.len())
    }
}

/// Correct protocol: however the partition writers and a concurrent
/// recovery observer interleave, every manifest record the observer
/// sees is fully backed by partition bytes — the validation cut never
/// drops a committed record.
#[test]
fn manifest_commits_only_after_partition_writes() {
    let report = check(
        "partition-manifest-commit-point",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let disk = Disk::new();
            let observer = {
                let disk = Arc::clone(&disk);
                thread::spawn(move || {
                    let (keep, seen) = disk.recover();
                    assert_eq!(
                        keep, seen,
                        "manifest ahead of partition data: {seen} records, {keep} backed"
                    );
                })
            };
            disk.append_block(0);
            disk.append_block(1);
            observer.join();
            let (keep, seen) = disk.recover();
            assert_eq!((keep, seen), (2, 2), "final state lost a committed block");
        },
    );
    assert!(
        report.schedules >= 100,
        "expected >= 100 schedules, explored {}",
        report.schedules
    );
    assert_eq!(
        report.races_found, 0,
        "correct commit-point protocol must be race-free"
    );
}

/// Seeded negative: with the manifest written before the partition
/// fsync, some schedule lets the observer see a manifest record whose
/// extents do not exist yet. The explorer must find it — proving the
/// suite would catch a commit-point reordering regression.
#[test]
fn seeded_manifest_before_partition_fsync_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let disk = Disk::new();
            let observer = {
                let disk = Arc::clone(&disk);
                thread::spawn(move || {
                    let (keep, seen) = disk.recover();
                    assert_eq!(
                        keep, seen,
                        "manifest ahead of partition data: {seen} records, {keep} backed"
                    );
                })
            };
            disk.append_block_reordered(0);
            observer.join();
        },
    );
    let failure = report
        .failure
        .expect("reordered commit point must be caught");
    assert!(
        failure.message.contains("manifest ahead of partition data"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Deterministic crash ladder: block 0 commits fully, then block 1's
/// append crashes after each single write-order boundary in turn —
/// each partition's extent write, its offsets write, and the manifest
/// write. Recovery must report height 1 at every pre-manifest
/// boundary and height 2 only once the manifest record landed.
#[test]
fn crash_after_every_write_boundary_recovers_to_commit_point() {
    // Plain-state twin of [`Disk`] (no model primitives — the ladder
    // is deterministic, so it runs outside the explorer).
    struct Flat {
        part_len: Vec<u64>,
        offsets_len: Vec<u64>,
        manifest: Vec<Vec<(usize, u64)>>,
    }
    impl Flat {
        fn recover(&self) -> (usize, usize) {
            let mut keep = 0;
            for entry in &self.manifest {
                if entry.iter().all(|&(p, end)| end <= self.part_len[p]) {
                    keep += 1;
                } else {
                    break;
                }
            }
            (keep, self.manifest.len())
        }
    }
    // One step per boundary: (partition extent, partition offsets)
    // pairs for each partition, then the manifest record.
    let nsteps = PARTS * 2 + 1;
    for crash_after in 0..=nsteps {
        // Block 0 fully committed, then block 1's append crashes.
        let mut disk = Flat {
            part_len: vec![1; PARTS],
            offsets_len: vec![1; PARTS],
            manifest: vec![(0..PARTS).map(|p| (p, 1)).collect()],
        };
        let mut step = 0;
        'steps: {
            for p in 0..PARTS {
                if step == crash_after {
                    break 'steps;
                }
                disk.part_len[p] += 1;
                step += 1;
                if step == crash_after {
                    break 'steps;
                }
                disk.offsets_len[p] += 1;
                step += 1;
            }
            if step == crash_after {
                break 'steps;
            }
            disk.manifest.push((0..PARTS).map(|p| (p, 2)).collect());
        }
        let (keep, seen) = disk.recover();
        let expect = if crash_after == nsteps { 2 } else { 1 };
        assert_eq!(
            keep, expect,
            "crash after step {crash_after}: recovered to height {keep}"
        );
        assert_eq!(keep, seen, "recovery kept a torn record");
    }
}

/// Per-partition handle caches: each partition directory has its own
/// lazily-opened segment handle cache. Readers racing first-touch
/// across two partitions (and doubling up on one) must open each
/// partition's file exactly once — the open-once proof of the segment
/// model, extended across the partition dimension.
#[test]
fn racing_first_reads_open_each_partition_segment_once() {
    struct PartCaches {
        slots: Vec<sync::RwLock<Tracked<Option<u64>>>>,
        /// Atomic, not `Tracked`: models the production `IoStats`
        /// open counter (exempt, DESIGN §14) — the open-once proof
        /// must fail on its own count assertion, not a race report.
        opens: Vec<AtomicU64>,
    }
    impl PartCaches {
        fn handle(&self, p: usize) -> u64 {
            if let Some(tok) = self.slots[p].read().get() {
                return tok;
            }
            let slot = self.slots[p].write();
            if let Some(tok) = slot.get() {
                return tok;
            }
            self.opens[p].fetch_add(1, Ordering::SeqCst);
            let tok = 1000 + p as u64;
            slot.set(Some(tok));
            tok
        }
    }
    let report = check(
        "partition-open-once",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let caches = Arc::new(PartCaches {
                slots: (0..PARTS)
                    .map(|_| sync::RwLock::new(Tracked::new(None)))
                    .collect(),
                opens: (0..PARTS).map(|_| AtomicU64::new(0)).collect(),
            });
            let readers: Vec<_> = [0usize, 1, 0]
                .into_iter()
                .map(|p| {
                    let caches = Arc::clone(&caches);
                    thread::spawn(move || {
                        let tok = caches.handle(p);
                        assert_eq!(tok, 1000 + p as u64, "wrong handle for partition {p}");
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            for p in 0..PARTS {
                let opened = caches.opens[p].load(Ordering::SeqCst);
                assert_eq!(opened, 1, "partition {p} opened {opened} times");
            }
        },
    );
    assert!(
        report.schedules >= 100,
        "expected >= 100 schedules, explored {}",
        report.schedules
    );
    assert_eq!(report.races_found, 0, "open-once cache must be race-free");
}
