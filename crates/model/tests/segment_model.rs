//! Model of the `SegmentSet` handle cache (crates/storage/segment.rs):
//! a sharded `RwLock` vector of lazily-opened file handles with
//! double-checked open under the shard write lock, serving positioned
//! reads that hold no lock across I/O.
//!
//! Invariants under test: however concurrent first-reads interleave,
//! each segment is "opened" at most once per shard slot (the
//! double-checked guard), and positioned reads never return torn
//! buffers. The seeded negative tests remove the double-check (proving
//! the explorer catches the double-open) and model the old seek-then-
//! read protocol over a shared cursor (proving the explorer catches
//! the torn read positioned I/O eliminates).

use sebdb_model::{check, explore, race::Tracked, sync, thread, Options};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 2;

/// The handle cache under model: "opening" a segment is bumping a
/// per-segment open counter and storing a token.
struct HandleCache {
    shards: Vec<sync::RwLock<Tracked<Vec<Option<u64>>>>>,
    /// Deliberately an atomic (models production `IoStats`-style
    /// counters, exempt from tracking): the seeded double-open must
    /// fail on its own assertion, not a race report.
    opens: Vec<AtomicU64>,
    /// When true, skip the re-check after upgrading to the write lock —
    /// the bug the double-checked pattern exists to prevent.
    skip_double_check: bool,
}

impl HandleCache {
    fn new(segments: usize, skip_double_check: bool) -> Arc<HandleCache> {
        Arc::new(HandleCache {
            shards: (0..SHARDS)
                .map(|_| sync::RwLock::new(Tracked::new(Vec::new())))
                .collect(),
            opens: (0..segments).map(|_| AtomicU64::new(0)).collect(),
            skip_double_check,
        })
    }

    /// Mirrors `SegmentSet::handle`: read-lock fast path, then a write
    /// lock that resizes, re-checks, and opens.
    fn handle(&self, segment: usize) -> u64 {
        let shard = &self.shards[segment % SHARDS];
        let slot = segment / SHARDS;
        if let Some(Some(tok)) = shard.read().with(|c| c.get(slot).copied()) {
            return tok;
        }
        let cache = shard.write();
        cache.with_mut(|c| {
            if c.len() <= slot {
                c.resize_with(slot + 1, || None);
            }
        });
        if !self.skip_double_check {
            if let Some(tok) = cache.with(|c| c[slot]) {
                return tok;
            }
        }
        // "open" the file.
        self.opens[segment].fetch_add(1, Ordering::SeqCst);
        let tok = 1000 + segment as u64;
        cache.with_mut(|c| c[slot] = Some(tok));
        tok
    }
}

/// Three readers race first-touch of two segments that share a shard:
/// every schedule must open each segment exactly once and hand every
/// reader the same handle token.
#[test]
fn racing_first_reads_open_once_per_segment() {
    let report = check(
        "segment-open-once",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cache = HandleCache::new(3, false);
            let readers: Vec<_> = [0usize, 2, 0]
                .into_iter()
                .map(|seg| {
                    let cache = Arc::clone(&cache);
                    // Segments 0 and 2 share shard 0 at slots 0 and 1 —
                    // the resize/open race the double-check guards.
                    thread::spawn(move || {
                        let tok = cache.handle(seg);
                        assert_eq!(tok, 1000 + seg as u64, "wrong handle for segment {seg}");
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            for seg in [0usize, 2] {
                let opened = cache.opens[seg].load(Ordering::SeqCst);
                assert_eq!(opened, 1, "segment {seg} opened {opened} times");
            }
        },
    );
    assert!(
        report.schedules >= 100,
        "expected >= 100 schedules, explored {}",
        report.schedules
    );
    assert_eq!(
        report.races_found, 0,
        "mainline segment model must be race-free"
    );
}

/// Negative control: with the post-upgrade re-check removed, two
/// first-readers of the same segment can both open it. The explorer
/// must find that schedule — proving the suite would catch a
/// regression in the double-checked pattern.
#[test]
fn seeded_double_open_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cache = HandleCache::new(1, true);
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        cache.handle(0);
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            assert!(
                cache.opens[0].load(Ordering::SeqCst) <= 1,
                "segment opened twice"
            );
        },
    );
    let failure = report.failure.expect("double-open schedule must exist");
    assert!(
        failure.message.contains("opened twice"),
        "unexpected failure: {}",
        failure.message
    );
}

/// A file modelled as two "sectors"; positioned reads read both
/// sectors atomically with respect to the offset (no shared state),
/// so concurrent readers of different records always see consistent
/// buffers.
#[test]
fn positioned_reads_never_tear() {
    let report = check(
        "segment-positioned-read",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            // Record r lives at "offset" r and holds (r, r) — a torn
            // read would pair halves of different records.
            let readers: Vec<_> = (0..3u64)
                .map(|r| {
                    thread::spawn(move || {
                        // pread(offset=r): no cursor, no lock — derive
                        // both halves from the request alone.
                        let (a, b) = (r, r);
                        assert_eq!(a, b, "torn positioned read");
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
        },
    );
    assert!(report.failure.is_none());
    assert_eq!(report.races_found, 0);
}

/// Negative control: the *old* protocol — seek on a shared cursor,
/// then read wherever the cursor points — without the global mutex
/// that used to serialize it. Two readers interleave seek/read and one
/// reads the other's record: the torn-read schedule the explorer must
/// find. (Positioned I/O removes the cursor entirely; the global
/// mutex removal is safe only because of that.)
#[test]
fn seeded_shared_cursor_tear_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cursor = Arc::new(sync::Mutex::new(0u64));
            let readers: Vec<_> = (0..2u64)
                .map(|r| {
                    let cursor = Arc::clone(&cursor);
                    thread::spawn(move || {
                        // seek(r) and read() as *separate* critical
                        // sections — the unserialized two-step.
                        *cursor.lock() = r;
                        let at = *cursor.lock();
                        assert_eq!(at, r, "read at foreign offset (torn)");
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
        },
    );
    let failure = report.failure.expect("shared-cursor tear must be found");
    assert!(
        failure.message.contains("torn"),
        "unexpected failure: {}",
        failure.message
    );
}
