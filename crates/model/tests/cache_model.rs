//! Model of the sharded block/tx caches (crates/storage): keys hash to
//! one of two shards, each shard behind its own mutex with a bounded
//! LRU-ish eviction. Shard locks are leaf locks in the real engine —
//! taken one at a time, never nested — and the sweep path that does
//! touch both shards must take them in shard-index order.
//!
//! Invariants under test: an inserted entry is visible to readers until
//! evicted, capacity is never exceeded, and the ordered cross-shard
//! sweep cannot deadlock. The seeded-inversion test flips the sweep
//! order on one thread and requires the explorer to find the deadlock.

use sebdb_model::{check, explore, race::Tracked, sync, thread, Options};
use std::sync::Arc;

const SHARDS: usize = 2;
const CAP_PER_SHARD: usize = 2;

/// One shard: `(key, value)` entries in LRU order, race-tracked.
type Shard = sync::Mutex<Tracked<Vec<(u64, u64)>>>;

struct Cache {
    shards: Vec<Shard>,
}

impl Cache {
    fn new() -> Arc<Cache> {
        Arc::new(Cache {
            shards: (0..SHARDS)
                .map(|_| sync::Mutex::new(Tracked::new(Vec::new())))
                .collect(),
        })
    }

    fn shard_of(key: u64) -> usize {
        (key % SHARDS as u64) as usize
    }

    /// Insert with front-of-list promotion and tail eviction.
    fn put(&self, key: u64, value: u64) {
        let shard = self.shards[Self::shard_of(key)].lock();
        shard.with_mut(|entries| {
            entries.retain(|(k, _)| *k != key);
            entries.insert(0, (key, value));
            assert!(
                entries.len() <= CAP_PER_SHARD + 1,
                "shard grew past capacity before eviction"
            );
            entries.truncate(CAP_PER_SHARD);
        });
    }

    fn get(&self, key: u64) -> Option<u64> {
        let shard = self.shards[Self::shard_of(key)].lock();
        shard.with(|entries| entries.iter().find(|(k, _)| *k == key).map(|(_, v)| *v))
    }

    /// Cross-shard sweep (stats / clear paths): takes every shard lock,
    /// in shard-index order unless `inverted`.
    fn sweep(&self, inverted: bool) -> usize {
        if inverted {
            let s1 = self.shards[1].lock();
            let s0 = self.shards[0].lock();
            s0.with(Vec::len) + s1.with(Vec::len)
        } else {
            let s0 = self.shards[0].lock();
            let s1 = self.shards[1].lock();
            s0.with(Vec::len) + s1.with(Vec::len)
        }
    }
}

/// Concurrent writers on both shards plus an ordered sweep: inserts
/// stay visible (within capacity), the sweep never sees more than
/// capacity, and no schedule deadlocks.
#[test]
fn sharded_cache_visibility_and_capacity() {
    let report = check(
        "cache-visibility",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let cache = Cache::new();
            let writers: Vec<_> = [(0u64, 10u64), (1, 11), (2, 12)]
                .into_iter()
                .map(|(k, v)| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        cache.put(k, v);
                        // A writer must see its own write while it fits
                        // in the shard (cap 2, at most 2 keys/shard
                        // here: keys 0 and 2 share shard 0).
                        assert_eq!(cache.get(k), Some(v), "own write invisible");
                    })
                })
                .collect();
            let sweeper = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || {
                    let total = cache.sweep(false);
                    assert!(total <= SHARDS * CAP_PER_SHARD, "sweep saw over-capacity");
                })
            };
            for w in writers {
                w.join();
            }
            sweeper.join();
            for (k, v) in [(0u64, 10u64), (1, 11), (2, 12)] {
                assert_eq!(cache.get(k), Some(v), "committed write lost");
            }
        },
    );
    assert!(
        report.schedules >= 200,
        "expected >= 200 schedules, explored {}",
        report.schedules
    );
    assert_eq!(
        report.races_found, 0,
        "mainline cache model must be race-free"
    );
}

/// Seeded lock inversion: one sweep takes shard 1 then shard 0 while
/// another takes them in order. The explorer must produce the deadlock
/// schedule. (The runtime counterpart is the parking_lot shim's
/// lock-order cycle detector; this is the model-level witness.)
#[test]
fn inverted_sweep_deadlock_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let cache = Cache::new();
            let ordered = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.sweep(false))
            };
            let inverted = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.sweep(true))
            };
            ordered.join();
            inverted.join();
        },
    );
    let failure = report.failure.expect("seeded inversion must deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}
