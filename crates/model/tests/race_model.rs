//! Seeded-negative suite for the happens-before race detector
//! (crates/model/src/race.rs): each test plants a classic
//! synchronisation bug that the detector MUST flag — proving the
//! detector would catch the corresponding regression in the real
//! suites — next to a positive control showing the correctly
//! synchronised version of the same pattern is race-free.
//!
//! Bug one is the unsynchronized flag publish: a writer fills a data
//! cell and raises a ready flag with no lock, channel, or join edge
//! between it and the reader (the bug `Mempool::close` / the applier
//! shutdown path would have if they skipped their mutex). Bug two is
//! the lock-free read-modify-write: two threads increment a plain
//! counter without a lock (the bug `IoStats` would have if its
//! counters were plain `u64`s instead of atomics — exactly why atomics
//! are exempt from tracking, DESIGN §14).

use sebdb_model::race::Tracked;
use sebdb_model::{explore, sync, thread, Options};
use std::sync::Arc;

fn opts() -> Options {
    Options {
        max_schedules: 20_000,
        max_depth: 60,
        prune: false,
    }
}

/// Seeded negative: a writer publishes `data` and raises `ready`
/// through plain tracked cells, with no synchronisation edge to the
/// reader. Every access pair (reader vs writer) is unordered; the
/// detector must fail the run with a replayable decision vector.
#[test]
fn seeded_unsynchronized_flag_publish_is_flagged() {
    fn buggy_flag_publish() {
        let data = Arc::new(Tracked::new(0u64));
        let ready = Arc::new(Tracked::new(false));
        let writer = {
            let data = Arc::clone(&data);
            let ready = Arc::clone(&ready);
            thread::spawn(move || {
                data.set(42);
                ready.set(true); // no release edge: nothing orders this
            })
        };
        // Reads race with the writer's stores: no acquire edge either.
        if ready.get() {
            assert_eq!(data.get(), 42);
        }
        writer.join();
    }
    let report = explore(opts(), buggy_flag_publish);
    let failure = report
        .failure
        .expect("unsynchronized flag publish must be flagged");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {}",
        failure.message
    );
    assert_eq!(report.races_found, 1, "failure must be counted as a race");
    assert!(
        !failure.decisions.is_empty(),
        "race report must carry a replayable decision vector"
    );
    // The DESIGN §14 replay workflow: the decision vector alone
    // deterministically reproduces the exact racing schedule.
    let replayed = sebdb_model::replay(&failure.decisions, buggy_flag_publish)
        .expect("replaying the decision vector must reproduce the race");
    assert_eq!(
        replayed.message, failure.message,
        "replay must hit the same race at the same sites"
    );
}

/// Positive control for the flag publish: moving both cells under a
/// mutex makes every access pair ordered by release→acquire, and the
/// detector stays quiet across all schedules.
#[test]
fn mutex_guarded_flag_publish_is_race_free() {
    let report = explore(opts(), || {
        let state = Arc::new(sync::Mutex::new((Tracked::new(0u64), Tracked::new(false))));
        let writer = {
            let state = Arc::clone(&state);
            thread::spawn(move || {
                let guard = state.lock();
                guard.0.set(42);
                guard.1.set(true);
            })
        };
        {
            let guard = state.lock();
            if guard.1.get() {
                assert_eq!(guard.0.get(), 42);
            }
        }
        writer.join();
    });
    assert!(report.failure.is_none(), "control must pass");
    assert_eq!(report.races_found, 0);
    assert!(report.schedules > 1, "interleavings must actually exist");
}

/// Seeded negative: two threads increment a shared counter with a
/// plain load-add-store and no lock. The two writes (and each write
/// against the other thread's read) are unordered; the detector must
/// flag the first conflicting pair it sees.
#[test]
fn seeded_lock_free_counter_increment_is_flagged() {
    let report = explore(opts(), || {
        let counter = Arc::new(Tracked::new(0u64));
        let bumpers: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = counter.get(); // racing read-modify-write
                    counter.set(v + 1);
                })
            })
            .collect();
        for b in bumpers {
            b.join();
        }
    });
    let failure = report
        .failure
        .expect("lock-free counter increment must be flagged");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {}",
        failure.message
    );
    assert_eq!(report.races_found, 1, "failure must be counted as a race");
    assert!(
        !failure.decisions.is_empty(),
        "race report must carry a replayable decision vector"
    );
}

/// Positive control for the counter: the same increment under a mutex
/// is ordered on every schedule — and, unlike the seeded negative, the
/// final count is reliably 2.
#[test]
fn mutex_guarded_counter_increment_is_race_free() {
    let report = explore(opts(), || {
        let counter = Arc::new(sync::Mutex::new(Tracked::new(0u64)));
        let bumpers: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let guard = counter.lock();
                    let v = guard.get();
                    guard.set(v + 1);
                })
            })
            .collect();
        for b in bumpers {
            b.join();
        }
        assert_eq!(counter.lock().get(), 2, "lost update under a mutex");
    });
    assert!(report.failure.is_none(), "control must pass");
    assert_eq!(report.races_found, 0);
    assert!(report.schedules > 1, "interleavings must actually exist");
}
