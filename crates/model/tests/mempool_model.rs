//! Model of the ingest mempool (crates/consensus/src/mempool.rs): a
//! condvar-guarded pending buffer drained by one block producer, cut at
//! `max_txs` or on the packaging timeout — here the scheduler decides
//! when the timeout fires, so the flush races submissions in every
//! order the real clock could produce.
//!
//! The invariant under test is exactly-once delivery: every accepted
//! submission appears in exactly one producer batch (or in the
//! post-close leftovers), nothing is lost, nothing duplicated.

use sebdb_model::{check, explore, race::Tracked, sync, thread, Options};
use std::sync::Arc;
use std::time::Duration;

const MAX_TXS: usize = 2;

#[derive(Hash)]
struct PoolState {
    queue: Tracked<Vec<u64>>,
    closed: Tracked<bool>,
}

struct Pool {
    state: sync::Mutex<PoolState>,
    arrived: sync::Condvar,
    /// Seeded bug switch: submit without notifying the producer.
    notify_on_submit: bool,
}

impl Pool {
    fn new(notify_on_submit: bool) -> Arc<Pool> {
        Arc::new(Pool {
            state: sync::Mutex::new(PoolState {
                queue: Tracked::new(Vec::new()),
                closed: Tracked::new(false),
            }),
            arrived: sync::Condvar::new(),
            notify_on_submit,
        })
    }

    /// Returns false if the pool is closed (the caller's tx was
    /// refused).
    fn submit(&self, tx: u64) -> bool {
        let st = self.state.lock();
        if st.closed.get() {
            return false;
        }
        st.queue.with_mut(|q| q.push(tx));
        drop(st);
        if self.notify_on_submit {
            self.arrived.notify_one();
        }
        true
    }

    /// Producer side: blocks until max_txs pending or the packaging
    /// timeout fires with a partial batch; None once closed. `timed`
    /// selects wait_timeout (the real code) vs plain wait (the seeded
    /// lost-wakeup variant's stricter observer).
    fn next_batch(&self, timed: bool) -> Option<Vec<u64>> {
        let mut st = self.state.lock();
        loop {
            if st.closed.get() {
                return None;
            }
            if st.queue.with(Vec::len) >= MAX_TXS {
                let batch = st.queue.with_mut(|q| q.drain(..MAX_TXS).collect());
                return Some(batch);
            }
            if timed {
                let res = self
                    .arrived
                    .wait_timeout(&mut st, Duration::from_millis(200));
                // Timeout flush: whatever is pending ships now.
                if res.timed_out() && !st.queue.with(Vec::is_empty) {
                    let batch = st.queue.with_mut(std::mem::take);
                    return Some(batch);
                }
            } else {
                self.arrived.wait(&mut st);
            }
        }
    }

    fn close(&self) {
        self.state.lock().closed.set(true);
        self.arrived.notify_all();
    }

    fn take_remaining(&self) -> Vec<u64> {
        self.state.lock().queue.with_mut(std::mem::take)
    }
}

/// Two submitters race the producer's timeout flush; afterwards every
/// accepted tx must be in exactly one batch or in the leftovers.
#[test]
fn timeout_flush_racing_submit_delivers_exactly_once() {
    let report = check(
        "mempool-exactly-once",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let pool = Pool::new(true);
            let producer = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let mut delivered = Vec::new();
                    while let Some(batch) = pool.next_batch(true) {
                        assert!(batch.len() <= MAX_TXS, "batch over max_txs");
                        delivered.extend(batch);
                    }
                    delivered
                })
            };
            let submitters: Vec<_> = [vec![1u64, 2], vec![3u64]]
                .into_iter()
                .map(|txs| {
                    let pool = Arc::clone(&pool);
                    thread::spawn(move || {
                        for tx in txs {
                            assert!(pool.submit(tx), "pool closed before close()");
                        }
                    })
                })
                .collect();
            for s in submitters {
                s.join();
            }
            pool.close();
            let mut all = producer.join();
            all.extend(pool.take_remaining());
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3], "lost or duplicated transactions");
        },
    );
    assert!(
        report.schedules >= 300,
        "expected >= 300 schedules, explored {}",
        report.schedules
    );
    assert_eq!(
        report.races_found, 0,
        "mainline mempool model must be race-free"
    );
}

/// Close must wake a producer parked in the arrival wait — even the
/// strict variant that waits without a timeout. A close that failed to
/// notify would deadlock here.
#[test]
fn close_wakes_blocked_producer() {
    check(
        "mempool-close-wakes",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let pool = Pool::new(true);
            let producer = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.next_batch(false))
            };
            let pool2 = Arc::clone(&pool);
            let closer = thread::spawn(move || pool2.close());
            closer.join();
            assert_eq!(producer.join(), None);
        },
    );
}

/// Seeded bug: submit() forgets to notify. With a producer that waits
/// without a timeout the explorer must find the lost-wakeup deadlock.
/// (The real producer's wait_timeout would mask this as latency — which
/// is exactly why the lint bans sleep-based polling as a fix.)
#[test]
fn missing_submit_notify_is_caught_as_lost_wakeup() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let pool = Pool::new(false);
            let producer = {
                let pool = Arc::clone(&pool);
                thread::spawn(move || pool.next_batch(false))
            };
            let pool2 = Arc::clone(&pool);
            let submitter = thread::spawn(move || {
                pool2.submit(1);
                pool2.submit(2);
            });
            submitter.join();
            let batch = producer.join();
            assert_eq!(batch, Some(vec![1, 2]));
        },
    );
    let failure = report.failure.expect("lost wakeup must be caught");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}
