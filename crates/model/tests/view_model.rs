//! Model of the materialized-view fold stage
//! (crates/core/src/views.rs + pipeline.rs): the persister fans each
//! block to a view-folder consumer over a bounded channel; the folder
//! waits until the applied height covers the block (views never
//! observe a height above `Ledger::height()`), then folds the block's
//! delta into the view exactly once; the serve path catches a lagging
//! view up under the same lock before answering.
//!
//! The folded delta of block `h` is modelled as the number `h + 1`, so
//! the view's "rows" reduce to the running sum `folded·(folded+1)/2` —
//! any double fold, skipped fold, or out-of-order fold shifts the sum
//! and is caught by the invariant, which is exactly the equivalence
//! gate (view == fresh rescan) in miniature.
//!
//! Invariants under test:
//! - **No height skew**: `folded ≤ applied` always — the view never
//!   reflects a block readers cannot yet query.
//! - **Exactly-once fold**: `rows == prefix_sum(folded)` always, even
//!   with the serve-path catch-up racing the folder stage.
//! - **Poison propagation**: an applier that dies mid-stream wakes the
//!   folder's no-timeout height wait (a lost wakeup is a deadlock).
//!
//! Seeded negative models (a folder that skips the idempotence check;
//! a folder that folds without waiting for the applied height) prove
//! the checker catches both classes of bug.

use sebdb_model::{channel, check, explore, race::Tracked, sync, thread, Options};
use std::sync::Arc;

const BLOCKS: u64 = 3;

/// Sum of deltas over blocks `0..n` with `delta(h) = h + 1`.
fn prefix_sum(n: u64) -> u64 {
    n * (n + 1) / 2
}

/// The model ledger-plus-view: the applied chain height, the view's
/// fold cursor and accumulated rows, and the poison flag — all behind
/// one lock standing in for the view's `RwLock` + `height_watch`, with
/// a condvar for height waiters.
#[derive(Hash)]
struct State {
    applied: Tracked<u64>,
    folded: Tracked<u64>,
    rows: Tracked<u64>,
    poisoned: Tracked<bool>,
}

struct Model {
    state: sync::Mutex<State>,
    advanced: sync::Condvar,
}

impl Model {
    fn new() -> Arc<Model> {
        Arc::new(Model {
            state: sync::Mutex::new(State {
                applied: Tracked::new(0),
                folded: Tracked::new(0),
                rows: Tracked::new(0),
                poisoned: Tracked::new(false),
            }),
            advanced: sync::Condvar::new(),
        })
    }

    fn check_invariant(s: &State) {
        assert!(
            s.folded.get() <= s.applied.get(),
            "view ran ahead of the applied height: folded={} applied={}",
            s.folded.get(),
            s.applied.get()
        );
        assert_eq!(
            s.rows.get(),
            prefix_sum(s.folded.get()),
            "view diverged from a fresh rescan at folded={}",
            s.folded.get()
        );
    }

    /// `fold_views` for one block under the lock: idempotence skip,
    /// gap catch-up, then the delta fold. `skip_idempotence` is the
    /// seeded double-fold bug.
    fn fold_block(s: &State, h: u64, skip_idempotence: bool) {
        if !skip_idempotence && s.folded.get() > h {
            return; // already folded (serve-path catch-up won the race)
        }
        while s.folded.get() < h {
            let gap = s.folded.get();
            s.rows.set(s.rows.get() + gap + 1);
            s.folded.set(gap + 1);
        }
        s.rows.set(s.rows.get() + h + 1);
        s.folded.set(h + 1);
        Model::check_invariant(s);
    }

    /// The serve path: catch the view up to the applied height under
    /// the lock, then "answer" — the answer must equal a fresh rescan
    /// of the applied prefix.
    fn serve(&self) {
        let s = self.state.lock();
        let target = s.applied.get();
        while s.folded.get() < target {
            let h = s.folded.get();
            Model::fold_block(&s, h, false);
        }
        assert_eq!(
            s.rows.get(),
            prefix_sum(target),
            "served result diverged from rescan at height {target}"
        );
        Model::check_invariant(&s);
    }
}

/// Applier: persist-and-index block `h` (send it downstream first, as
/// the persister fans out before the lanes finish), then advance the
/// applied height and wake waiters.
fn run_applier(model: &Model, folder: channel::Sender<u64>, die_at: Option<u64>) {
    for h in 0..BLOCKS {
        if die_at == Some(h) {
            // PoisonOnPanic drop guard: poison, wake every waiter.
            model.state.lock().poisoned.set(true);
            model.advanced.notify_all();
            return;
        }
        if folder.send(h).is_err() {
            return;
        }
        let s = model.state.lock();
        s.applied.set(h + 1);
        Model::check_invariant(&s);
        drop(s);
        model.advanced.notify_all();
    }
}

/// The view-folder stage: wait (no timeout — a lost wakeup deadlocks)
/// until the applied height covers the block or the pipeline poisons,
/// then fold. `skew_bug` folds immediately without the height wait.
fn run_folder(model: &Model, rx: &channel::Receiver<u64>, skip_idempotence: bool, skew_bug: bool) {
    while let Ok(h) = rx.recv() {
        let mut s = model.state.lock();
        if !skew_bug {
            while s.applied.get() < h + 1 && !s.poisoned.get() {
                model.advanced.wait(&mut s);
            }
            if s.poisoned.get() {
                return;
            }
        }
        Model::fold_block(&s, h, skip_idempotence);
    }
}

/// A tracking query arriving at arbitrary points: serve (with
/// catch-up) after every observed height advance until the chain is
/// fully applied and folded.
fn run_reader(model: &Model) {
    loop {
        model.serve();
        let mut s = model.state.lock();
        if s.poisoned.get() || (s.applied.get() == BLOCKS && s.folded.get() == BLOCKS) {
            return;
        }
        model
            .advanced
            .wait_timeout(&mut s, std::time::Duration::from_millis(50));
    }
}

fn main_model(model: Arc<Model>, skip_idempotence: bool, skew_bug: bool) {
    let (tx, rx) = channel::bounded::<u64>(1);
    let folder = {
        let model = Arc::clone(&model);
        thread::spawn(move || run_folder(&model, &rx, skip_idempotence, skew_bug))
    };
    let reader = {
        let model = Arc::clone(&model);
        thread::spawn(move || run_reader(&model))
    };
    let applier = {
        let model = Arc::clone(&model);
        thread::spawn(move || run_applier(&model, tx, None))
    };
    applier.join();
    folder.join();
    reader.join();
    let s = model.state.lock();
    assert_eq!(s.applied.get(), BLOCKS);
    assert_eq!(s.folded.get(), BLOCKS, "view must reach the tip");
    Model::check_invariant(&s);
}

#[test]
fn fold_cursor_and_rescan_equivalence_hold_on_every_schedule() {
    let report = check(
        "view-fold-invariant",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || main_model(Model::new(), false, false),
    );
    assert!(
        report.schedules >= 200,
        "expected >= 200 schedules, explored {}",
        report.schedules
    );
    assert!(
        report.distinct_traces >= 200,
        "expected >= 200 distinct traces, saw {}",
        report.distinct_traces
    );
    assert_eq!(
        report.races_found, 0,
        "mainline view model must be race-free"
    );
}

/// The applier dies mid-stream; the folder is parked in its no-timeout
/// height wait for a block the chain will never apply. The poison
/// wakeup must reach it — a lost wakeup here is a hard deadlock, which
/// the checker reports.
#[test]
fn poison_wakes_the_folder_out_of_its_height_wait() {
    check(
        "view-fold-poison",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let model = Model::new();
            let (tx, rx) = channel::bounded::<u64>(1);
            let folder = {
                let model = Arc::clone(&model);
                thread::spawn(move || run_folder(&model, &rx, false, false))
            };
            let applier = {
                let model = Arc::clone(&model);
                // Send block 1 downstream but die before applying it.
                thread::spawn(move || {
                    run_applier(&model, tx, Some(1));
                })
            };
            applier.join();
            folder.join();
            let s = model.state.lock();
            assert!(s.poisoned.get());
            assert!(
                s.folded.get() <= s.applied.get(),
                "poisoned teardown still must not skew the view"
            );
            Model::check_invariant(&s);
        },
    );
}

/// Seeded bug: the folder folds without the `folded > h` idempotence
/// check. The serve-path catch-up can fold a block first; the folder
/// then folds it again and the view's rows drift off the rescan sum.
#[test]
fn double_fold_without_idempotence_check_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || main_model(Model::new(), true, false),
    );
    let failure = report.failure.expect("the double-fold bug must be caught");
    assert!(
        failure.message.contains("diverged from a fresh rescan")
            || failure.message.contains("diverged from rescan"),
        "unexpected failure: {}",
        failure.message
    );
}

/// Seeded bug: the folder folds as soon as the block arrives, without
/// waiting for the applied height — the view observes a block readers
/// cannot query yet, violating the no-skew invariant.
#[test]
fn folding_ahead_of_the_applied_height_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || main_model(Model::new(), false, true),
    );
    let failure = report.failure.expect("the height-skew bug must be caught");
    assert!(
        failure.message.contains("ran ahead of the applied height"),
        "unexpected failure: {}",
        failure.message
    );
}
