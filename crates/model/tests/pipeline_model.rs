//! Model of the apply pipeline (crates/core/src/pipeline.rs): a sealer
//! stage persists blocks and hands them to an indexer stage over a
//! depth-1 channel; the indexer indexes and then advances the applied
//! height, which height-waiters observe through a condvar.
//!
//! The invariant under test is the ledger's height contract:
//! `applied <= indexed <= persisted` at every observable point — the
//! applied height only advances once a block is both persisted and
//! indexed (chain height may run ahead; applied height never does).

use sebdb_model::{channel, check, explore, race::Tracked, sync, thread, Options};
use std::sync::Arc;

const BLOCKS: u64 = 2;

/// The model ledger: three height counters and the poison flag, each
/// update its own lock acquisition so the explorer can preempt between
/// them, plus a condvar for height waiters.
#[derive(Hash)]
struct Heights {
    persisted: Tracked<u64>,
    indexed: Tracked<u64>,
    applied: Tracked<u64>,
    poisoned: Tracked<bool>,
}

struct Ledger {
    heights: sync::Mutex<Heights>,
    advanced: sync::Condvar,
}

impl Ledger {
    fn new() -> Arc<Ledger> {
        Arc::new(Ledger {
            heights: sync::Mutex::new(Heights {
                persisted: Tracked::new(0),
                indexed: Tracked::new(0),
                applied: Tracked::new(0),
                poisoned: Tracked::new(false),
            }),
            advanced: sync::Condvar::new(),
        })
    }

    fn check_invariant(h: &Heights) {
        let (applied, indexed, persisted) = (h.applied.get(), h.indexed.get(), h.persisted.get());
        assert!(
            applied <= indexed && indexed <= persisted,
            "height invariant violated: applied={applied} indexed={indexed} persisted={persisted}"
        );
    }
}

/// Sealer stage: persist each block, then hand it to the indexer.
/// Returns early if the indexer is gone (crash model).
fn run_sealer(ledger: &Ledger, to_indexer: &channel::Sender<u64>) {
    for h in 1..=BLOCKS {
        ledger.heights.lock().persisted.set(h);
        if to_indexer.send(h).is_err() {
            return;
        }
    }
}

fn main_model(ledger: Arc<Ledger>, broken_apply_first: bool) {
    let (seal_tx, seal_rx) = channel::bounded::<u64>(1);
    let sealer = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || run_sealer(&ledger, &seal_tx))
    };
    let indexer = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            while let Ok(h) = seal_rx.recv() {
                if broken_apply_first {
                    // The seeded bug: applied advances before the index
                    // write lands — waiters can observe an applied
                    // block that is not yet indexed.
                    ledger.heights.lock().applied.set(h);
                    ledger.heights.lock().indexed.set(h);
                } else {
                    ledger.heights.lock().indexed.set(h);
                    ledger.heights.lock().applied.set(h);
                }
                ledger.advanced.notify_all();
            }
        })
    };
    // Height waiter: observes the counters at every wakeup and at every
    // spurious/timeout wakeup the scheduler chooses to fire.
    let waiter = {
        let ledger = Arc::clone(&ledger);
        thread::spawn(move || {
            let mut guard = ledger.heights.lock();
            while guard.applied.get() < BLOCKS {
                Ledger::check_invariant(&guard);
                ledger
                    .advanced
                    .wait_timeout(&mut guard, std::time::Duration::from_millis(50));
            }
            Ledger::check_invariant(&guard);
        })
    };
    sealer.join();
    indexer.join();
    waiter.join();
    let h = ledger.heights.lock();
    assert_eq!(h.applied.get(), BLOCKS);
    Ledger::check_invariant(&h);
}

#[test]
fn height_invariant_holds_on_every_schedule() {
    let report = check(
        "pipeline-height-invariant",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || main_model(Ledger::new(), false),
    );
    assert!(
        report.schedules >= 500,
        "expected >= 500 schedules, explored {}",
        report.schedules
    );
    assert!(
        report.distinct_traces >= 500,
        "expected >= 500 distinct traces, saw {}",
        report.distinct_traces
    );
    assert_eq!(
        report.races_found, 0,
        "mainline pipeline model must be race-free"
    );
}

#[test]
fn applied_before_indexed_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || main_model(Ledger::new(), true),
    );
    let failure = report
        .failure
        .expect("the applied-before-indexed bug must be caught");
    assert!(
        failure.message.contains("height invariant violated"),
        "unexpected failure: {}",
        failure.message
    );
}

/// The indexer stage "panics" mid-block (modelled as the PoisonOnPanic
/// drop guard firing: poison the health flag, wake every waiter, tear
/// down the stage). Waiters block *without* a timeout here so a lost
/// poison wakeup shows up as a hard deadlock.
#[test]
fn indexer_poison_wakes_height_waiters() {
    check(
        "pipeline-poison",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let ledger = Ledger::new();
            let (seal_tx, seal_rx) = channel::bounded::<u64>(1);
            let sealer = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_sealer(&ledger, &seal_tx))
            };
            let indexer = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    while let Ok(h) = seal_rx.recv() {
                        if h == BLOCKS {
                            // Panic mid-block: the drop guard poisons
                            // health and wakes waiters; the stage (and
                            // its receiver) goes away.
                            ledger.heights.lock().poisoned.set(true);
                            ledger.advanced.notify_all();
                            return;
                        }
                        ledger.heights.lock().indexed.set(h);
                        ledger.heights.lock().applied.set(h);
                        ledger.advanced.notify_all();
                    }
                })
            };
            let waiter = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    let mut guard = ledger.heights.lock();
                    while guard.applied.get() < BLOCKS && !guard.poisoned.get() {
                        Ledger::check_invariant(&guard);
                        // No timeout: a lost poison wakeup deadlocks.
                        ledger.advanced.wait(&mut guard);
                    }
                    guard.poisoned.get()
                })
            };
            sealer.join();
            indexer.join();
            let saw_poison = waiter.join();
            assert!(saw_poison, "waiter exited without poison at h < BLOCKS");
            let h = ledger.heights.lock();
            assert!(h.applied.get() < BLOCKS && h.poisoned.get());
            Ledger::check_invariant(&h);
        },
    );
}

/// The indexer crashes at the stage boundary: the block is persisted
/// but not yet indexed. Recovery (restart) observes indexed < persisted
/// and replays the index step; the applied height must stay behind
/// until it does.
#[test]
fn crash_at_stage_boundary_recovers() {
    check(
        "pipeline-crash-boundary",
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: false,
        },
        || {
            let ledger = Ledger::new();
            let (seal_tx, seal_rx) = channel::bounded::<u64>(1);
            let sealer = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || run_sealer(&ledger, &seal_tx))
            };
            let indexer = {
                let ledger = Arc::clone(&ledger);
                thread::spawn(move || {
                    // Crashes after block 1: block 2 may land persisted
                    // but unindexed.
                    if let Ok(h) = seal_rx.recv() {
                        ledger.heights.lock().indexed.set(h);
                        ledger.heights.lock().applied.set(h);
                        ledger.advanced.notify_all();
                    }
                })
            };
            sealer.join();
            indexer.join();
            // Restart path: replay everything persisted but unindexed.
            {
                let guard = ledger.heights.lock();
                Ledger::check_invariant(&guard);
                if guard.indexed.get() < guard.persisted.get() {
                    guard.indexed.set(guard.persisted.get());
                }
                guard.applied.set(guard.indexed.get());
                Ledger::check_invariant(&guard);
            }
            ledger.advanced.notify_all();
            let h = ledger.heights.lock();
            assert_eq!(
                h.applied.get(),
                h.persisted.get(),
                "recovery must catch applied up"
            );
        },
    );
}
