//! Model of the `IndexBlockCache` (crates/storage/indexseg.rs): a
//! sharded map of lazily-loaded level-1 index blocks with an inflight
//! set + condvar deduplicating concurrent first-loads, LRU-by-tick
//! eviction, and loads performed outside the shard lock.
//!
//! Invariants under test: however concurrent first-reads interleave,
//! each (file, block) is loaded from disk at most once while resident
//! (the inflight guard); eviction under a full cache never hands a
//! reader another block's bytes and never strands a waiter; and the
//! seeded negative removes the inflight dedup, proving the explorer
//! catches the double-load the guard exists to prevent.

use sebdb_model::{check, explore, race::Tracked, sync, thread, Options};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cache shard under model: `map[block]` holds `(token, tick)`
/// for resident blocks, `inflight[block]` marks loads in progress.
/// Every field is a `Tracked` cell so the race detector proves the
/// shard-lock discipline orders all accesses.
#[derive(Hash)]
struct Shard {
    map: Tracked<Vec<Option<(u64, u64)>>>,
    inflight: Tracked<Vec<bool>>,
    tick: Tracked<u64>,
}

struct CacheModel {
    state: sync::Mutex<Shard>,
    cv: sync::Condvar,
    /// Per-block disk-load counter — the "opened at most once while
    /// resident" witness. Deliberately an atomic, not a `Tracked` cell:
    /// it models the production `IoStats` atomics (exempt from
    /// tracking, DESIGN §14) and the seeded double-load negative must
    /// fail on its own "loaded twice" assertion, not on a race report.
    loads: Vec<AtomicU64>,
    capacity: usize,
    /// When false, skip the inflight check — the double-load bug the
    /// dedup exists to prevent (seeded negative).
    dedup_inflight: bool,
}

fn token_of(block: usize) -> u64 {
    100 + block as u64
}

impl CacheModel {
    fn new(blocks: usize, capacity: usize, dedup_inflight: bool) -> Arc<CacheModel> {
        Arc::new(CacheModel {
            state: sync::Mutex::new(Shard {
                map: Tracked::new(vec![None; blocks]),
                inflight: Tracked::new(vec![false; blocks]),
                tick: Tracked::new(0),
            }),
            cv: sync::Condvar::new(),
            loads: (0..blocks).map(|_| AtomicU64::new(0)).collect(),
            capacity,
            dedup_inflight,
        })
    }

    /// Mirrors `IndexBlockCache::get_or_load`: hit path bumps the LRU
    /// tick; miss path marks inflight, drops the lock for the "disk"
    /// load, republishes, evicts over capacity, and notifies waiters.
    fn get_or_load(&self, block: usize) -> u64 {
        let mut s = self.state.lock();
        loop {
            if let Some((tok, _)) = s.map.with(|m| m[block]) {
                let t = s.tick.with_mut(|t| {
                    *t += 1;
                    *t
                });
                s.map.with_mut(|m| m[block] = Some((tok, t)));
                return tok;
            }
            if self.dedup_inflight && s.inflight.with(|f| f[block]) {
                self.cv.wait(&mut s);
                continue;
            }
            s.inflight.with_mut(|f| f[block] = true);
            drop(s);
            // The load happens outside the shard lock (positioned read
            // + checksum in the real code).
            self.loads[block].fetch_add(1, Ordering::SeqCst);
            let tok = token_of(block);
            s = self.state.lock();
            s.inflight.with_mut(|f| f[block] = false);
            let t = s.tick.with_mut(|t| {
                *t += 1;
                *t
            });
            s.map.with_mut(|m| m[block] = Some((tok, t)));
            while s.map.with(|m| m.iter().flatten().count()) > self.capacity {
                let victim = s.map.with(|m| {
                    m.iter()
                        .enumerate()
                        .filter_map(|(i, e)| e.map(|(_, t)| (t, i)))
                        .min()
                        .map(|(_, i)| i)
                        .unwrap()
                });
                s.map.with_mut(|m| m[victim] = None);
            }
            self.cv.notify_all();
            return tok;
        }
    }
}

/// Three readers race first-touch of two blocks with room for both:
/// every schedule must load each block from disk exactly once and hand
/// every reader its own block's bytes.
#[test]
fn racing_first_reads_load_once_per_block() {
    let report = check(
        "index-cache-load-once",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cache = CacheModel::new(2, 2, true);
            let readers: Vec<_> = [0usize, 1, 0]
                .into_iter()
                .map(|block| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        let tok = cache.get_or_load(block);
                        assert_eq!(tok, token_of(block), "wrong bytes for block {block}");
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            for block in [0usize, 1] {
                let loads = cache.loads[block].load(Ordering::SeqCst);
                assert_eq!(loads, 1, "block {block} loaded {loads} times");
            }
        },
    );
    assert!(
        report.schedules >= 100,
        "expected >= 100 schedules, explored {}",
        report.schedules
    );
    assert_eq!(
        report.races_found, 0,
        "mainline index-cache model must be race-free"
    );
}

/// Eviction vs concurrent readers: a capacity-1 cache thrashed by
/// readers of two distinct blocks may reload an evicted block (that is
/// the cost of a bounded cache), but must never hand a reader another
/// block's bytes, never exceed its capacity once quiescent, and never
/// strand a waiter (every schedule runs to completion).
#[test]
fn eviction_under_pressure_stays_consistent_and_bounded() {
    let report = check(
        "index-cache-eviction",
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cache = CacheModel::new(2, 1, true);
            let readers: Vec<_> = [0usize, 1, 0]
                .into_iter()
                .map(|block| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        let tok = cache.get_or_load(block);
                        assert_eq!(
                            tok,
                            token_of(block),
                            "eviction handed block {block} foreign bytes"
                        );
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            let s = cache.state.lock();
            let resident = s.map.with(|m| m.iter().flatten().count());
            assert!(resident <= 1, "cache over capacity: {resident} resident");
            assert!(
                !s.inflight.with(|f| f.iter().any(|&b| b)),
                "quiescent cache still marks a load inflight"
            );
        },
    );
    assert!(report.failure.is_none());
    assert!(
        report.schedules >= 100,
        "expected >= 100 schedules, explored {}",
        report.schedules
    );
    assert_eq!(report.races_found, 0);
}

/// Negative control: with the inflight dedup removed, two racing
/// first-readers of the same block can both reach the disk load. The
/// explorer must find that schedule — proving the suite would catch a
/// regression in the single-flight guard.
#[test]
fn seeded_double_load_is_caught() {
    let report = explore(
        Options {
            max_schedules: 20_000,
            max_depth: 60,
            prune: false,
        },
        || {
            let cache = CacheModel::new(1, 1, false);
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    thread::spawn(move || {
                        cache.get_or_load(0);
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            assert!(
                cache.loads[0].load(Ordering::SeqCst) <= 1,
                "block loaded twice"
            );
        },
    );
    let failure = report.failure.expect("double-load schedule must exist");
    assert!(
        failure.message.contains("loaded twice"),
        "unexpected failure: {}",
        failure.message
    );
}
