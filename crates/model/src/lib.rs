//! `sebdb-model` — a loom-style deterministic interleaving checker for
//! SEBDB's concurrency building blocks.
//!
//! The crate re-exports model versions of the primitives the engine is
//! built on — the parking_lot shim's `Mutex`/`RwLock`/`Condvar`
//! ([`sync`]), the crossbeam shim's bounded channel ([`channel`]), and
//! `sebdb-parallel`-style thread spawn/join ([`thread`]) — with
//! identical APIs, so a small model of a component reads like the
//! component itself. [`explore`] then runs the model under every
//! schedule a bounded-depth DFS can reach: exactly one model thread
//! executes between scheduling points (every primitive operation is
//! one), each complete run yields a decision vector, and the explorer
//! backtracks over those decisions until the space is exhausted or the
//! schedule budget runs out.
//!
//! What a run can catch:
//! - **Assertion failures** in the model body (invariant violations),
//!   reported with the decision vector that reproduces them.
//! - **Deadlocks / lost wakeups**: a state where no thread is runnable
//!   and not everyone has finished fails the run. Threads parked in
//!   `wait_timeout` don't deadlock — the scheduler may fire their
//!   timeout, which is also how timeout/spurious-wakeup races get
//!   explored.
//! - **Data races**: every model thread carries a vector clock and the
//!   primitives propagate happens-before edges (lock release→acquire,
//!   channel send→recv, condvar notify→wake, spawn/join); a
//!   [`race::Tracked`] cell records each read/write with the accessing
//!   thread's clock and fails the run when two conflicting accesses are
//!   unordered, reporting both access sites. See DESIGN.md §14.
//!
//! Bounds and caveats (see DESIGN.md §9): branching stops at
//! `max_depth` decisions (beyond it the scheduler picks the first
//! runnable thread, preferring non-timeout progress), `notify_one`
//! deterministically wakes the lowest-id waiter, and optional
//! state-hash pruning treats two states with equal fingerprints as
//! identical — sound for these models' `Hash`-faithful payloads, but a
//! fingerprint collision could in principle hide a schedule.

mod sched;

pub mod channel;
pub mod race;
pub mod sync;
pub mod thread;

use sched::{Execution, ModelAbort};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Hard cap on complete runs; exploration stops here even if
    /// unexplored branches remain.
    pub max_schedules: usize,
    /// Scheduling decisions the DFS may branch over; beyond this depth
    /// every run takes the default (first-runnable) choice.
    pub max_depth: usize,
    /// Skip branching at states whose fingerprint was already expanded.
    pub prune: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_schedules: 20_000,
            max_depth: 40,
            prune: true,
        }
    }
}

/// A failing schedule: the message plus the decision vector that
/// deterministically reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub message: String,
    pub decisions: Vec<usize>,
}

/// What an exploration covered.
#[derive(Debug, Clone)]
pub struct Report {
    /// Complete runs executed.
    pub schedules: usize,
    /// Distinct schedule traces among them (hash of the actual thread
    /// interleaving — runs that only differ in pruned branches
    /// collapse).
    pub distinct_traces: usize,
    /// The first failing schedule, if any. Exploration stops at the
    /// first failure.
    pub failure: Option<Failure>,
    /// Data races reported by [`race::Tracked`] cells across all runs.
    /// A race is a failure, so this is 0 on a clean exploration and 1
    /// when `failure` carries a race report.
    pub races_found: usize,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} schedules, {} distinct traces, {} race(s) found",
            self.schedules, self.distinct_traces, self.races_found
        )
    }
}

/// Runs `f` under every schedule within [`Options`]' bounds. `f` is
/// invoked once per run and must build all its model objects itself
/// (object identity is assigned in creation order, which replay relies
/// on). Returns the coverage report; inspect `failure` yourself — use
/// [`check`] to panic on failure instead.
pub fn explore<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let visited = opts
        .prune
        .then(|| Arc::new(Mutex::new(HashSet::<u64>::new())));
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    let mut races = 0usize;
    let mut traces = HashSet::new();
    loop {
        let ex = Execution::new(replay.clone(), opts.max_depth, visited.clone());
        let root_tid = ex.register_thread(None);
        // Hand thread 0 the slot before it exists so its first park
        // returns immediately — no startup race.
        ex.start();
        let root = {
            let ex = Arc::clone(&ex);
            let f = Arc::clone(&f);
            std::thread::Builder::new()
                .name("sebdb-model-root".into())
                .spawn(move || run_model_thread(ex, root_tid, move || f()))
                .expect("failed to spawn model root thread")
        };
        let outcome = ex.wait_done();
        let _ = root.join();
        schedules += 1;
        races += outcome.races;
        traces.insert(outcome.trace_hash);
        if let Some(message) = outcome.failure {
            return Report {
                schedules,
                distinct_traces: traces.len(),
                failure: Some(Failure {
                    message,
                    decisions: outcome.decisions.iter().map(|d| d.chosen).collect(),
                }),
                races_found: races,
            };
        }
        if schedules >= opts.max_schedules {
            return Report {
                schedules,
                distinct_traces: traces.len(),
                failure: None,
                races_found: races,
            };
        }
        // Backtrack: rewind to the deepest decision with an untried
        // option and take its successor; exploration is complete when
        // none remains.
        match next_replay(&outcome.decisions) {
            Some(next) => replay = next,
            None => {
                return Report {
                    schedules,
                    distinct_traces: traces.len(),
                    failure: None,
                    races_found: races,
                }
            }
        }
    }
}

/// Re-runs `f` under exactly one schedule, prescribed by a failure's
/// decision vector (`Failure::decisions` / the vector [`check`] prints
/// on panic). The model replays deterministically — object identity is
/// creation-ordered — so the same failure reproduces; returns it for
/// inspection, or `None` if the schedule now passes (e.g. after a
/// fix). Entries beyond the vector fall back to the default
/// first-runnable choice, matching the original run past `max_depth`.
pub fn replay<F>(decisions: &[usize], f: F) -> Option<Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let ex = Execution::new(decisions.to_vec(), 0, None);
    let root_tid = ex.register_thread(None);
    ex.start();
    let root = {
        let ex = Arc::clone(&ex);
        std::thread::Builder::new()
            .name("sebdb-model-replay".into())
            .spawn(move || run_model_thread(ex, root_tid, move || f()))
            .expect("failed to spawn model root thread")
    };
    let outcome = ex.wait_done();
    let _ = root.join();
    outcome.failure.map(|message| Failure {
        message,
        decisions: outcome.decisions.iter().map(|d| d.chosen).collect(),
    })
}

/// [`explore`], panicking with the failing schedule if one is found.
/// Returns the report otherwise so tests can assert on coverage.
pub fn check<F>(name: &str, opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(opts, f);
    if let Some(failure) = &report.failure {
        panic!(
            "model '{name}' failed after {} schedules ({} race(s) found): {}\n  reproducing decisions: {:?}",
            report.schedules, report.races_found, failure.message, failure.decisions
        );
    }
    // One line per suite in CI logs: coverage and races side by side.
    println!("model '{name}': {report}");
    report
}

/// The body every model OS thread runs: bind the scheduler context,
/// park until scheduled, run, and report how it ended. A `ModelAbort`
/// unwind means the run is being torn down — exit silently.
pub(crate) fn run_model_thread<T>(
    ex: Arc<Execution>,
    tid: usize,
    body: impl FnOnce() -> T,
) -> Option<T> {
    sched::set_ctx(Some((Arc::clone(&ex), tid)));
    ex.first_wait(tid);
    let result = catch_unwind(AssertUnwindSafe(body));
    let out = match result {
        Ok(value) => {
            ex.finish_thread(tid, None);
            Some(value)
        }
        Err(payload) => {
            if !payload.is::<ModelAbort>() {
                ex.finish_thread(tid, Some(panic_message(payload)));
            }
            None
        }
    };
    sched::set_ctx(None);
    out
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// The DFS step: truncate after the deepest decision that still has an
/// untried sibling and advance it.
fn next_replay(decisions: &[sched::Decision]) -> Option<Vec<usize>> {
    for (i, d) in decisions.iter().enumerate().rev() {
        if d.chosen + 1 < d.options {
            let mut replay: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
            replay.push(d.chosen + 1);
            return Some(replay);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(max_schedules: usize, max_depth: usize) -> Options {
        Options {
            max_schedules,
            max_depth,
            prune: false,
        }
    }

    #[test]
    fn locked_counter_survives_all_schedules() {
        let report = check("locked-counter", opts(5_000, 30), || {
            let counter = Arc::new(sync::Mutex::new(0u64));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || *counter.lock() += 1)
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(report.schedules > 1, "expected multiple interleavings");
    }

    #[test]
    fn finds_lost_update_in_split_increment() {
        let report = explore(opts(5_000, 30), || {
            let counter = Arc::new(sync::Mutex::new(0u64));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        // Read and write under separate acquisitions:
                        // the classic lost update.
                        let seen = *counter.lock();
                        *counter.lock() = seen + 1;
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(*counter.lock(), 2, "lost update");
        });
        let failure = report.failure.expect("explorer must find the lost update");
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
    }

    #[test]
    fn finds_deadlock_from_lock_inversion() {
        let report = explore(opts(5_000, 30), || {
            let a = Arc::new(sync::Mutex::new(0u64));
            let b = Arc::new(sync::Mutex::new(0u64));
            let t1 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let ga = a.lock();
                    let gb = b.lock();
                    drop((ga, gb));
                })
            };
            let t2 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    let gb = b.lock();
                    let ga = a.lock();
                    drop((gb, ga));
                })
            };
            t1.join();
            t2.join();
        });
        let failure = report.failure.expect("explorer must find the deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn finds_lost_wakeup_from_unconditional_wait() {
        // Flag set + notify racing a waiter that checks the flag,
        // drops the lock, then re-locks to wait: the notify can land
        // in the window where nobody waits, and the wait then hangs.
        let report = explore(opts(5_000, 30), || {
            let flag = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let setter = {
                let (flag, cv) = (Arc::clone(&flag), Arc::clone(&cv));
                thread::spawn(move || {
                    *flag.lock() = true;
                    cv.notify_one();
                })
            };
            let ready = *flag.lock();
            if !ready {
                let mut guard = flag.lock();
                // BUG under test: no re-check of the predicate between
                // re-locking and waiting.
                cv.wait(&mut guard);
                drop(guard);
            }
            setter.join();
        });
        let failure = report.failure.expect("explorer must find the lost wakeup");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn channel_disconnect_and_timeout_paths() {
        check("channel-paths", opts(5_000, 30), || {
            let (tx, rx) = channel::bounded::<u64>(1);
            let producer = thread::spawn(move || {
                tx.send(7).expect("receiver alive");
                // Sender drops here: receiver must observe disconnect.
            });
            let mut got = Vec::new();
            loop {
                match rx.recv_timeout(std::time::Duration::from_millis(10)) {
                    Ok(v) => got.push(v),
                    Err(channel::RecvTimeoutError::Timeout) => continue,
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            }
            producer.join();
            assert_eq!(got, vec![7]);
        });
    }

    #[test]
    fn race_detector_flags_unsynchronized_write_read() {
        let report = explore(opts(5_000, 30), || {
            let cell = Arc::new(race::Tracked::new(0u64));
            let writer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.set(1))
            };
            // Unsynchronized read racing the writer.
            let _ = cell.get();
            writer.join();
        });
        let failure = report.failure.expect("detector must flag the race");
        assert!(failure.message.contains("data race"), "{}", failure.message);
        assert_eq!(report.races_found, 1);
    }

    #[test]
    fn mutex_edges_order_tracked_accesses() {
        let report = check("mutex-hb", opts(5_000, 30), || {
            let cell = Arc::new(race::Tracked::new(0u64));
            let gate = Arc::new(sync::Mutex::new(false));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (cell, gate) = (Arc::clone(&cell), Arc::clone(&gate));
                    thread::spawn(move || {
                        let _g = gate.lock();
                        cell.set(cell.get() + 1);
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            assert_eq!(cell.get(), 2);
        });
        assert_eq!(report.races_found, 0);
        assert!(report.schedules > 1);
    }

    #[test]
    fn channel_send_recv_orders_tracked_accesses() {
        let report = check("channel-hb", opts(5_000, 30), || {
            let cell = Arc::new(race::Tracked::new(0u64));
            let (tx, rx) = channel::bounded::<u64>(1);
            let producer = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    cell.set(7);
                    tx.send(1).expect("receiver alive");
                })
            };
            rx.recv().expect("sender alive");
            // Ordered after the producer's write via send→recv.
            assert_eq!(cell.get(), 7);
            producer.join();
        });
        assert_eq!(report.races_found, 0);
    }

    #[test]
    fn spawn_and_join_order_tracked_accesses() {
        let report = check("spawn-join-hb", opts(5_000, 30), || {
            let cell = Arc::new(race::Tracked::new(0u64));
            cell.set(1); // before spawn: ordered into the child
            let child = {
                let cell = Arc::clone(&cell);
                thread::spawn(move || cell.set(cell.get() + 1))
            };
            child.join();
            assert_eq!(cell.get(), 2); // after join: ordered after the child
        });
        assert_eq!(report.races_found, 0);
    }

    #[test]
    fn condvar_notify_orders_but_timeout_does_not() {
        // The waiter reads the cell only after a *notified* wake, which
        // carries the setter's clock; on a timed-out wake it re-checks
        // the flag under the mutex instead. Zero races either way.
        let report = check("condvar-hb", opts(5_000, 30), || {
            let cell = Arc::new(race::Tracked::new(0u64));
            let flag = Arc::new(sync::Mutex::new(false));
            let cv = Arc::new(sync::Condvar::new());
            let setter = {
                let (cell, flag, cv) = (Arc::clone(&cell), Arc::clone(&flag), Arc::clone(&cv));
                thread::spawn(move || {
                    cell.set(9);
                    *flag.lock() = true;
                    cv.notify_one();
                })
            };
            let mut guard = flag.lock();
            while !*guard {
                let _ = cv.wait_timeout(&mut guard, std::time::Duration::from_millis(1));
            }
            drop(guard);
            assert_eq!(cell.get(), 9);
            setter.join();
        });
        assert_eq!(report.races_found, 0);
        assert!(report.schedules > 1);
    }

    #[test]
    fn pruning_reduces_schedules_without_losing_failures() {
        let run = |prune: bool| {
            explore(
                Options {
                    max_schedules: 20_000,
                    max_depth: 30,
                    prune,
                },
                || {
                    let counter = Arc::new(sync::Mutex::new(0u64));
                    let workers: Vec<_> = (0..3)
                        .map(|_| {
                            let counter = Arc::clone(&counter);
                            thread::spawn(move || *counter.lock() += 1)
                        })
                        .collect();
                    for w in workers {
                        w.join();
                    }
                    assert_eq!(*counter.lock(), 3);
                },
            )
        };
        let full = run(false);
        let pruned = run(true);
        assert!(full.failure.is_none() && pruned.failure.is_none());
        assert!(
            pruned.schedules <= full.schedules,
            "pruning must not add schedules ({} > {})",
            pruned.schedules,
            full.schedules
        );
    }
}
