//! Model bounded/unbounded channels with the crossbeam shim's API.
//!
//! Send on a full bounded channel and recv on an empty one block under
//! the scheduler; `recv_timeout` is a timed block the scheduler may
//! resolve by firing the timeout. Disconnection follows crossbeam:
//! sends fail once every receiver is gone, receives fail once the
//! buffer is drained and every sender is gone.

use crate::sched::{ctx, ctx_opt, StateSig, VClock, Wake};
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, PoisonError, Weak};
use std::time::Duration;

/// Send failed: every receiver is gone. Carries the value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Receive failed: channel empty and every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

struct ChanState<T> {
    /// Each queued message carries the sender's clock at send time: the
    /// send→recv happens-before edge is per message, so receiving
    /// message 1 does not spuriously order the receiver after the send
    /// of message 2.
    queue: VecDeque<(T, VClock)>,
    senders: usize,
    receivers: usize,
}

struct ChanCore<T> {
    meta: std::sync::Mutex<ChanState<T>>,
    cap: Option<usize>,
    id: OnceLock<u64>,
}

impl<T> ChanCore<T> {
    fn id(&self) -> u64 {
        *self.id.get().expect("model object not registered")
    }
}

impl<T: Hash + Send + 'static> StateSig for ChanCore<T> {
    fn sig(&self) -> u64 {
        let st = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        let mut h = DefaultHasher::new();
        4u64.hash(&mut h);
        st.senders.hash(&mut h);
        st.receivers.hash(&mut h);
        for (item, _clock) in &st.queue {
            // Clocks are exploration bookkeeping, not channel content —
            // hashing them would make every state look novel to pruning.
            item.hash(&mut h);
        }
        h.finish()
    }
}

/// Sending half; clonable like crossbeam's.
pub struct Sender<T> {
    core: Arc<ChanCore<T>>,
}

/// Receiving half; clonable like crossbeam's.
pub struct Receiver<T> {
    core: Arc<ChanCore<T>>,
}

fn channel<T: Hash + Send + 'static>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let core = Arc::new(ChanCore {
        meta: std::sync::Mutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        id: OnceLock::new(),
    });
    let (ex, _) = ctx();
    let weak: Weak<dyn StateSig> = Arc::downgrade(&core) as Weak<dyn StateSig>;
    let id = ex.register_object(weak);
    core.id.set(id).expect("object registered twice");
    (
        Sender {
            core: Arc::clone(&core),
        },
        Receiver { core },
    )
}

/// A bounded channel of capacity `cap >= 1` (the engine's pipelines use
/// depth-1 channels; rendezvous channels are not modelled).
pub fn bounded<T: Hash + Send + 'static>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "model channels need capacity >= 1");
    channel(Some(cap))
}

/// An unbounded channel.
pub fn unbounded<T: Hash + Send + 'static>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

impl<T: Send> Sender<T> {
    /// Blocks while the channel is full; fails once every receiver is
    /// gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut st = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if st.receivers == 0 {
                drop(st);
                // Disconnect edge: the last receiver's drop published
                // its clock; observing the disconnect is ordered after.
                ex.sync_acquire(me, self.core.id());
                return Err(SendError(value));
            }
            if self.core.cap.is_none_or(|cap| st.queue.len() < cap) {
                // Stamp the message with the sender's clock (send→recv
                // edge). Safe to call into the scheduler with `meta`
                // held: only the running thread touches channel meta
                // locks, and `signature()` is never concurrent with it.
                let clock = ex.send_clock(me);
                st.queue.push_back((value, clock));
                drop(st);
                ex.wake_all(self.core.id());
                return Ok(());
            }
            drop(st);
            ex.block_on(me, self.core.id(), false);
        }
    }
}

impl<T: Send> Receiver<T> {
    /// Blocks while the channel is empty; fails once it is drained and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut st = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((value, clock)) = st.queue.pop_front() {
                drop(st);
                ex.recv_clock(me, &clock);
                ex.wake_all(self.core.id());
                return Ok(value);
            }
            if st.senders == 0 {
                drop(st);
                ex.sync_acquire(me, self.core.id());
                return Err(RecvError);
            }
            drop(st);
            ex.block_on(me, self.core.id(), false);
        }
    }

    /// Like [`Self::recv`], but the scheduler may fire the timeout at
    /// any point while blocked (the duration itself is ignored — model
    /// time is schedule order).
    pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut st = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some((value, clock)) = st.queue.pop_front() {
                drop(st);
                ex.recv_clock(me, &clock);
                ex.wake_all(self.core.id());
                return Ok(value);
            }
            if st.senders == 0 {
                drop(st);
                ex.sync_acquire(me, self.core.id());
                return Err(RecvTimeoutError::Disconnected);
            }
            drop(st);
            if ex.block_on(me, self.core.id(), true) == Wake::TimedOut {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        let mut st = self
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((value, clock)) = st.queue.pop_front() {
            drop(st);
            ex.recv_clock(me, &clock);
            ex.wake_all(self.core.id());
            return Ok(value);
        }
        if st.senders == 0 {
            drop(st);
            ex.sync_acquire(me, self.core.id());
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        let mut st = self
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.senders += 1;
        drop(st);
        Sender {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        // The last sender leaving wakes blocked receivers so they can
        // observe the disconnect.
        if disconnected {
            if let Some((ex, me)) = ctx_opt() {
                ex.sync_release(me, self.core.id());
                ex.wake_all(self.core.id());
            }
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        let mut st = self
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.receivers += 1;
        drop(st);
        Receiver {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        st.receivers -= 1;
        let disconnected = st.receivers == 0;
        drop(st);
        if disconnected {
            if let Some((ex, me)) = ctx_opt() {
                ex.sync_release(me, self.core.id());
                ex.wake_all(self.core.id());
            }
        }
    }
}
