//! Model `Mutex`/`RwLock`/`Condvar` with the parking_lot shim's API.
//!
//! Each primitive is a scheduling point on acquisition, so the explorer
//! interleaves model threads at exactly the places the real engine can
//! be preempted around its locks. Guard drops release and wake waiters
//! but deliberately do NOT yield — `Drop` must never unwind, and the
//! released state is explored at the next thread's own scheduling
//! point.
//!
//! Payloads must be `Hash`: every object contributes a content
//! fingerprint to the state signature used for revisited-state pruning.

use crate::sched::{ctx, ctx_opt, StateSig, Wake};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, PoisonError, Weak};
use std::time::Duration;

fn fingerprint(tag: u64, parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    tag.hash(&mut h);
    parts.hash(&mut h);
    h.finish()
}

fn hash_of<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------
// Mutex

struct MutexCore<T> {
    /// The model lock bit; the scheduler serialises all access.
    meta: std::sync::Mutex<bool>,
    /// Real storage; uncontended by construction (only the model holder
    /// touches it).
    data: std::sync::Mutex<T>,
    id: OnceLock<u64>,
}

impl<T> MutexCore<T> {
    fn id(&self) -> u64 {
        *self.id.get().expect("model object not registered")
    }
}

impl<T: Hash + Send + 'static> StateSig for MutexCore<T> {
    fn sig(&self) -> u64 {
        let locked = *self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        // While a guard is out the holder owns the data; its progress
        // is captured by the holder thread's op counter instead.
        let content = match self.data.try_lock() {
            Ok(guard) => hash_of(&*guard),
            Err(_) => 0x6865_6c64, // "held"
        };
        fingerprint(1, &[locked as u64, content])
    }
}

/// A model mutex with the parking_lot shim's `lock()` API.
pub struct Mutex<T> {
    core: Arc<MutexCore<T>>,
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: Hash + Send + 'static> Mutex<T> {
    /// Creates and registers the mutex with the current execution —
    /// model objects must be built inside the `explore` closure.
    pub fn new(value: T) -> Mutex<T> {
        let core = Arc::new(MutexCore {
            meta: std::sync::Mutex::new(false),
            data: std::sync::Mutex::new(value),
            id: OnceLock::new(),
        });
        let (ex, _) = ctx();
        let weak: Weak<dyn StateSig> = Arc::downgrade(&core) as Weak<dyn StateSig>;
        let id = ex.register_object(weak);
        core.id.set(id).expect("object registered twice");
        Mutex { core }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut locked = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !*locked {
                *locked = true;
                break;
            }
            drop(locked);
            ex.block_on(me, self.core.id(), false);
        }
        // Acquire edge: everything released under this lock so far
        // happens-before this holder's accesses.
        ex.sync_acquire(me, self.core.id());
        MutexGuard {
            lock: self,
            inner: Some(
                self.core
                    .data
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }
}

impl<T> MutexGuard<'_, T> {
    /// Releases the model lock without yielding (condvar wait path and
    /// `Drop` share this).
    fn release(&mut self) {
        self.inner = None;
        let mut locked = self
            .lock
            .core
            .meta
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *locked = false;
        drop(locked);
        if let Some((ex, me)) = ctx_opt() {
            // Release edge: publish the holder's clock on the lock for
            // the next acquirer.
            ex.sync_release(me, self.lock.core.id());
            ex.wake_all(self.lock.core.id());
        }
    }

    /// Re-takes the model lock after a condvar wait.
    fn reacquire(&mut self) {
        let (ex, me) = ctx();
        loop {
            let mut locked = self
                .lock
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !*locked {
                *locked = true;
                break;
            }
            drop(locked);
            ex.block_on(me, self.lock.core.id(), false);
        }
        ex.sync_acquire(me, self.lock.core.id());
        self.inner = Some(
            self.lock
                .core
                .data
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.release();
        }
    }
}

// ---------------------------------------------------------------------
// RwLock

struct RwMeta {
    readers: usize,
    writer: bool,
}

struct RwLockCore<T> {
    meta: std::sync::Mutex<RwMeta>,
    data: std::sync::RwLock<T>,
    id: OnceLock<u64>,
}

impl<T> RwLockCore<T> {
    fn id(&self) -> u64 {
        *self.id.get().expect("model object not registered")
    }

    fn release_read(&self) {
        let mut meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        meta.readers -= 1;
        drop(meta);
        if let Some((ex, me)) = ctx_opt() {
            // Read releases also publish: a writer blocked on the last
            // reader is genuinely ordered after it. (This adds
            // reader→reader edges too — conservative, see DESIGN §14.)
            ex.sync_release(me, self.id());
            ex.wake_all(self.id());
        }
    }

    fn release_write(&self) {
        let mut meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        meta.writer = false;
        drop(meta);
        if let Some((ex, me)) = ctx_opt() {
            ex.sync_release(me, self.id());
            ex.wake_all(self.id());
        }
    }
}

impl<T: Hash + Send + Sync + 'static> StateSig for RwLockCore<T> {
    fn sig(&self) -> u64 {
        let meta = self.meta.lock().unwrap_or_else(PoisonError::into_inner);
        let content = match self.data.try_read() {
            Ok(guard) => hash_of(&*guard),
            Err(_) => 0x6865_6c64,
        };
        fingerprint(2, &[meta.readers as u64, meta.writer as u64, content])
    }
}

/// A model reader-writer lock with the parking_lot shim's API.
pub struct RwLock<T> {
    core: Arc<RwLockCore<T>>,
}

pub struct RwLockReadGuard<'a, T> {
    core: &'a RwLockCore<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

pub struct RwLockWriteGuard<'a, T> {
    core: &'a RwLockCore<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: Hash + Send + Sync + 'static> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        let core = Arc::new(RwLockCore {
            meta: std::sync::Mutex::new(RwMeta {
                readers: 0,
                writer: false,
            }),
            data: std::sync::RwLock::new(value),
            id: OnceLock::new(),
        });
        let (ex, _) = ctx();
        let weak: Weak<dyn StateSig> = Arc::downgrade(&core) as Weak<dyn StateSig>;
        let id = ex.register_object(weak);
        core.id.set(id).expect("object registered twice");
        RwLock { core }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut meta = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !meta.writer {
                meta.readers += 1;
                break;
            }
            drop(meta);
            ex.block_on(me, self.core.id(), false);
        }
        ex.sync_acquire(me, self.core.id());
        RwLockReadGuard {
            core: &self.core,
            inner: Some(
                self.core
                    .data
                    .read()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (ex, me) = ctx();
        ex.schedule_point(me);
        loop {
            let mut meta = self
                .core
                .meta
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if !meta.writer && meta.readers == 0 {
                meta.writer = true;
                break;
            }
            drop(meta);
            ex.block_on(me, self.core.id(), false);
        }
        ex.sync_acquire(me, self.core.id());
        RwLockWriteGuard {
            core: &self.core,
            inner: Some(
                self.core
                    .data
                    .write()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        }
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.core.release_read();
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.core.release_write();
        }
    }
}

// ---------------------------------------------------------------------
// Condvar

struct CvCore {
    id: OnceLock<u64>,
}

impl StateSig for CvCore {
    fn sig(&self) -> u64 {
        // A condvar carries no state of its own; waiters show up in the
        // thread-status part of the signature.
        fingerprint(3, &[])
    }
}

/// Result of a model [`Condvar::wait_timeout`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A model condvar with the parking_lot shim's `&mut guard` API.
/// `notify_one` deterministically wakes the lowest-id waiter; the
/// scheduler may fire a `wait_timeout` at any point, which doubles as
/// the spurious-wakeup model.
pub struct Condvar {
    core: Arc<CvCore>,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        let core = Arc::new(CvCore {
            id: OnceLock::new(),
        });
        let (ex, _) = ctx();
        let weak: Weak<dyn StateSig> = Arc::downgrade(&core) as Weak<dyn StateSig>;
        let id = ex.register_object(weak);
        core.id.set(id).expect("object registered twice");
        Condvar { core }
    }

    fn id(&self) -> u64 {
        *self.core.id.get().expect("model object not registered")
    }

    /// Atomically releases the mutex and blocks until notified; the
    /// mutex is re-held on return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let (ex, me) = ctx();
        guard.release();
        ex.block_on(me, self.id(), false);
        // Notify→wake edge: the notifier's clock was published on the
        // condvar by notify_one/notify_all.
        ex.sync_acquire(me, self.id());
        guard.reacquire();
    }

    /// Like [`Self::wait`], but the scheduler may also wake the thread
    /// by firing the timeout. The duration itself is ignored — model
    /// time is schedule order, so "the timeout fired" is just one more
    /// scheduling choice.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        _timeout: Duration,
    ) -> WaitTimeoutResult {
        let (ex, me) = ctx();
        guard.release();
        let wake = ex.block_on(me, self.id(), true);
        // Only a real notify carries the notifier's clock; a timeout
        // (or spurious wakeup) synchronises with nothing.
        if wake == Wake::Notified {
            ex.sync_acquire(me, self.id());
        }
        guard.reacquire();
        WaitTimeoutResult {
            timed_out: wake == Wake::TimedOut,
        }
    }

    pub fn notify_one(&self) {
        let (ex, me) = ctx();
        ex.sync_release(me, self.id());
        ex.wake_one(self.id());
    }

    pub fn notify_all(&self) {
        let (ex, me) = ctx();
        ex.sync_release(me, self.id());
        ex.wake_all(self.id());
    }
}
