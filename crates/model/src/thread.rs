//! Model thread spawn/join mirroring `sebdb-parallel`'s surface.
//!
//! Model threads are real OS threads gated by the scheduler, so
//! `spawn` costs a thread but runs deterministically. `join` blocks
//! under the scheduler until the target finishes — a join that can
//! never complete is reported as a deadlock like any other.

use crate::sched::{ctx, Execution};
use std::sync::Arc;

/// Handle to a spawned model thread.
pub struct JoinHandle<T> {
    ex: Arc<Execution>,
    tid: usize,
    handle: std::thread::JoinHandle<Option<T>>,
}

/// Spawns a model thread. Must be called from inside a model run.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (ex, me) = ctx();
    // The child inherits the parent's vector clock (spawn edge).
    let tid = ex.register_thread(Some(me));
    let handle = {
        let ex = Arc::clone(&ex);
        std::thread::Builder::new()
            .name(format!("sebdb-model-{tid}"))
            .spawn(move || crate::run_model_thread(ex, tid, f))
            .expect("failed to spawn model thread")
    };
    // Spawning is itself a scheduling point: the child may run first.
    ex.schedule_point(me);
    JoinHandle { ex, tid, handle }
}

impl<T> JoinHandle<T> {
    /// Waits (under the scheduler) for the thread to finish and returns
    /// its value. A user panic in the thread aborts the whole run with
    /// that panic recorded as the failure, so `join` only returns for
    /// cleanly finished threads.
    pub fn join(self) -> T {
        let (ex, me) = ctx();
        debug_assert!(Arc::ptr_eq(&ex, &self.ex), "join across executions");
        let join_obj = ex.join_obj(self.tid);
        while !ex.is_finished(self.tid) {
            ex.block_on(me, join_obj, false);
        }
        // Join edge: the child's final clock was published on its join
        // object at exit; everything it did happens-before this point.
        ex.sync_acquire(me, join_obj);
        // The model thread has passed its finish point; the OS thread
        // exits right after, so this join is prompt.
        match self.handle.join() {
            Ok(Some(value)) => value,
            // Unreachable in practice: a panicking model thread aborts
            // the run before the joiner gets here.
            _ => panic!("model thread terminated without a value"),
        }
    }
}

/// Model version of `sebdb_parallel::par_invoke`: runs every task on
/// its own model thread and joins them all. (The real primitive caps
/// workers and reuses the caller's thread; the model explores the
/// fully concurrent shape, which over-approximates it.)
pub fn par_invoke(tasks: Vec<Box<dyn FnOnce() + Send + 'static>>) {
    let handles: Vec<JoinHandle<()>> = tasks.into_iter().map(spawn).collect();
    for handle in handles {
        handle.join();
    }
}
