//! The deterministic scheduler: one model thread runs at a time, every
//! primitive operation is a scheduling point, and the explorer drives
//! a bounded-depth DFS over the scheduling decisions.
//!
//! Model threads are real OS threads gated by a condvar handshake so
//! exactly one executes between scheduling points — there is no true
//! concurrency inside a model run, which is what makes every schedule
//! replayable from its decision vector alone.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Condvar, Mutex, Weak};

/// Why a blocked thread resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A notify/wake from another thread.
    Notified,
    /// The scheduler fired the wait's timeout (or delivered a spurious
    /// wakeup — the model does not distinguish the two, matching what
    /// code must tolerate from real condvars).
    TimedOut,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a scheduling point, eligible to be chosen.
    Ready,
    /// Executing (exactly one thread at a time).
    Running,
    /// Blocked on an object; only a wake makes it eligible again.
    Blocked(u64),
    /// Blocked with a timeout: eligible to be chosen directly, which
    /// models the timeout (or a spurious wakeup) firing.
    TimedWait(u64),
    Finished,
}

/// A vector clock: `clock[t]` is the last epoch of thread `t` whose
/// effects are ordered before the clock's owner. Grown on demand —
/// a missing entry reads as 0.
pub(crate) type VClock = Vec<u64>;

/// `a := a ⊔ b` (element-wise max).
pub(crate) fn vjoin(a: &mut VClock, b: &VClock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x = (*x).max(*y);
    }
}

/// `clock[tid]`, treating missing entries as 0.
pub(crate) fn ventry(clock: &VClock, tid: usize) -> u64 {
    clock.get(tid).copied().unwrap_or(0)
}

struct ThreadRec {
    status: Status,
    wake: Option<Wake>,
    /// Operations executed — part of the state signature.
    ops: u64,
    /// Object id joiners block on.
    join_obj: u64,
    /// The thread's vector clock for happens-before race detection;
    /// `clock[me]` is the thread's own epoch, bumped at every release.
    clock: VClock,
}

/// One recorded scheduling decision: which of the eligible threads ran.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub options: usize,
}

/// Internal state-fingerprint hook: every model object reports a hash
/// of its current contents so the explorer can recognise revisited
/// states.
pub(crate) trait StateSig: Send + Sync {
    fn sig(&self) -> u64;
}

pub(crate) struct ExecState {
    threads: Vec<ThreadRec>,
    current: Option<usize>,
    replay: Vec<usize>,
    pub(crate) decisions: Vec<Decision>,
    /// Rolling hash over (thread, op-count) pairs — identifies the
    /// schedule.
    pub(crate) trace_hash: u64,
    /// Registered model objects, in creation order (creation order is
    /// deterministic per run, so ids line up across replays).
    objects: Vec<Option<Weak<dyn StateSig>>>,
    /// Per-object vector clocks: the join of every clock released into
    /// the object (lock release, condvar notify, thread exit). Indexed
    /// by object id, parallel to `objects`.
    obj_clocks: Vec<VClock>,
    pub(crate) failure: Option<String>,
    /// Data races reported by `Tracked` cells during this run.
    pub(crate) races: usize,
    abort: bool,
    /// Decision points where the explorer may branch (beyond the depth
    /// bound the first option is always taken).
    max_depth: usize,
}

/// A single model execution: the gate all model threads synchronise
/// through.
pub struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    /// State signatures seen at earlier decision points (shared across
    /// the whole exploration when state-hash pruning is enabled): a
    /// revisited state does not branch again.
    visited: Option<Arc<Mutex<HashSet<u64>>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind model threads when a run aborts; not a
/// test failure in itself.
pub(crate) struct ModelAbort;

/// The current thread's execution context; panics outside a model run.
pub(crate) fn ctx() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("sebdb-model primitive used outside explore()")
    })
}

/// Like [`ctx`] but non-panicking — for `Drop` impls, which must stay
/// quiet when a guard outlives the run (e.g. during abort teardown).
pub(crate) fn ctx_opt() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(ex: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ex);
}

fn mix(h: &mut u64, v: u64) {
    *h = h
        .wrapping_mul(0x100000001b3)
        .wrapping_add(v ^ 0x9E3779B97F4A7C15);
}

impl Execution {
    pub(crate) fn new(
        replay: Vec<usize>,
        max_depth: usize,
        visited: Option<Arc<Mutex<HashSet<u64>>>>,
    ) -> Arc<Execution> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: None,
                replay,
                decisions: Vec::new(),
                trace_hash: 0xcbf29ce484222325,
                objects: Vec::new(),
                obj_clocks: Vec::new(),
                failure: None,
                races: 0,
                abort: false,
                max_depth,
            }),
            cv: Condvar::new(),
            visited,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread; returns its id. `parent` is the
    /// spawning thread: the child inherits its clock (the spawn edge —
    /// everything the parent did before `spawn` happens-before the
    /// child), and the parent's epoch is bumped so the parent's *later*
    /// accesses stay unordered with the child.
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.lock();
        let join_obj = st.alloc_object_id(None);
        let tid = st.threads.len();
        let mut clock = match parent {
            Some(p) => {
                let inherited = st.threads[p].clock.clone();
                st.threads[p].clock[p] += 1;
                inherited
            }
            None => VClock::new(),
        };
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = 1;
        st.threads.push(ThreadRec {
            status: Status::Ready,
            wake: None,
            ops: 0,
            join_obj,
            clock,
        });
        tid
    }

    /// Release edge: publishes `me`'s clock into `obj` and advances
    /// `me`'s epoch, so accesses after the release are not ordered
    /// before whatever later acquires `obj`.
    pub(crate) fn sync_release(&self, me: usize, obj: u64) {
        let mut st = self.lock();
        let clock = st.threads[me].clock.clone();
        vjoin(&mut st.obj_clocks[obj as usize], &clock);
        st.threads[me].clock[me] += 1;
    }

    /// Acquire edge: joins `obj`'s clock into `me`'s, ordering every
    /// prior release of `obj` before `me`'s subsequent accesses.
    pub(crate) fn sync_acquire(&self, me: usize, obj: u64) {
        let mut st = self.lock();
        let oc = st.obj_clocks[obj as usize].clone();
        vjoin(&mut st.threads[me].clock, &oc);
    }

    /// Snapshot of `me`'s clock for a message send (channel send→recv
    /// edge); bumps `me`'s epoch like a release.
    pub(crate) fn send_clock(&self, me: usize) -> VClock {
        let mut st = self.lock();
        let snap = st.threads[me].clock.clone();
        st.threads[me].clock[me] += 1;
        snap
    }

    /// Joins a received message's clock into `me`'s (the recv side of
    /// the send→recv edge).
    pub(crate) fn recv_clock(&self, me: usize, clock: &VClock) {
        let mut st = self.lock();
        vjoin(&mut st.threads[me].clock, clock);
    }

    /// Snapshot of `me`'s current clock, for stamping a `Tracked`
    /// access.
    pub(crate) fn access_clock(&self, me: usize) -> VClock {
        self.lock().threads[me].clock.clone()
    }

    /// Records that a `Tracked` cell observed a data race this run; the
    /// caller then panics with the report, which lands in `failure`.
    pub(crate) fn record_race(&self) {
        self.lock().races += 1;
    }

    /// Registers a model object; returns its id.
    pub(crate) fn register_object(&self, sig: Weak<dyn StateSig>) -> u64 {
        self.lock().alloc_object_id(Some(sig))
    }

    pub(crate) fn join_obj(&self, tid: usize) -> u64 {
        self.lock().threads[tid].join_obj
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().threads[tid].status == Status::Finished
    }

    /// First park of a freshly spawned model thread: waits until the
    /// scheduler hands it the slot.
    pub(crate) fn first_wait(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        st = self.wait_for_slot(st, me);
        drop(st);
    }

    /// A scheduling point: the running thread offers the scheduler a
    /// chance to run any other eligible thread (or itself).
    pub(crate) fn schedule_point(self: &Arc<Self>, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(me));
        st.threads[me].status = Status::Ready;
        st.threads[me].ops += 1;
        st.current = None;
        self.choose(&mut st);
        st = self.wait_for_slot(st, me);
        drop(st);
    }

    /// Blocks the running thread on `obj`. With `timed`, the scheduler
    /// may wake it spontaneously (modelling the timeout / a spurious
    /// wakeup). Returns why it woke.
    pub(crate) fn block_on(self: &Arc<Self>, me: usize, obj: u64, timed: bool) -> Wake {
        let mut st = self.lock();
        debug_assert_eq!(st.current, Some(me));
        st.threads[me].status = if timed {
            Status::TimedWait(obj)
        } else {
            Status::Blocked(obj)
        };
        st.threads[me].ops += 1;
        st.current = None;
        if !self.choose(&mut st) {
            // Nobody can run and this thread just blocked: deadlock
            // (or a lost wakeup — same observable, a waiter that will
            // never be woken).
            let detail = st.describe_stuck();
            st.fail(format!("deadlock: no runnable thread ({detail})"));
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        st = self.wait_for_slot(st, me);
        let wake = st.threads[me].wake.take().unwrap_or(Wake::Notified);
        drop(st);
        wake
    }

    /// Wakes every thread blocked on `obj`.
    pub(crate) fn wake_all(&self, obj: u64) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            match t.status {
                Status::Blocked(o) | Status::TimedWait(o) if o == obj => {
                    t.status = Status::Ready;
                    t.wake = Some(Wake::Notified);
                }
                _ => {}
            }
        }
    }

    /// Wakes the lowest-id thread blocked on `obj` (the model's
    /// deterministic notify_one policy).
    pub(crate) fn wake_one(&self, obj: u64) {
        let mut st = self.lock();
        for t in st.threads.iter_mut() {
            match t.status {
                Status::Blocked(o) | Status::TimedWait(o) if o == obj => {
                    t.status = Status::Ready;
                    t.wake = Some(Wake::Notified);
                    break;
                }
                _ => {}
            }
        }
    }

    /// Marks the running thread finished and hands the slot onward.
    /// `panicked` carries a user-panic message to record as a failure.
    pub(crate) fn finish_thread(self: &Arc<Self>, me: usize, panicked: Option<String>) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        if let Some(msg) = panicked {
            st.fail(msg);
        }
        let join_obj = st.threads[me].join_obj;
        // Exit edge: the thread's final clock is published on its join
        // object; `join()` acquires it, ordering everything the child
        // did before the joiner's subsequent accesses.
        let clock = st.threads[me].clock.clone();
        vjoin(&mut st.obj_clocks[join_obj as usize], &clock);
        for t in st.threads.iter_mut() {
            match t.status {
                Status::Blocked(o) | Status::TimedWait(o) if o == join_obj => {
                    t.status = Status::Ready;
                    t.wake = Some(Wake::Notified);
                }
                _ => {}
            }
        }
        if st.current == Some(me) {
            st.current = None;
        }
        if !self.choose(&mut st) && !st.abort && !st.all_finished() && st.failure.is_none() {
            let detail = st.describe_stuck();
            st.fail(format!("deadlock after thread exit ({detail})"));
        }
        // Wake the chosen successor (or, when the run is over or
        // aborted, the host and every parked thread).
        drop(st);
        self.cv.notify_all();
    }

    /// The host-side kick that starts a run once thread 0 is parked.
    pub(crate) fn start(self: &Arc<Self>) {
        let mut st = self.lock();
        if st.current.is_none() {
            self.choose(&mut st);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Host-side wait for run completion; returns the outcome.
    pub(crate) fn wait_done(self: &Arc<Self>) -> RunOutcome {
        let mut st = self.lock();
        loop {
            if st.abort || st.all_finished() {
                return RunOutcome {
                    decisions: st.decisions.clone(),
                    trace_hash: st.trace_hash,
                    failure: st.failure.clone(),
                    races: st.races,
                };
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Picks the next thread to run per the DFS replay vector. Returns
    /// false when no thread is eligible.
    fn choose(&self, st: &mut ExecState) -> bool {
        if st.abort {
            return false;
        }
        // Ready threads come first so that option 0 — the forced choice
        // beyond the branching depth — always makes real progress;
        // timeouts (TimedWait chosen directly) only fire as the default
        // when nothing else can run. Within the branching depth the DFS
        // still explores every timeout firing early.
        let mut options: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        options.extend(
            st.threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::TimedWait(_)))
                .map(|(i, _)| i),
        );
        if options.is_empty() {
            return false;
        }
        let d = st.decisions.len();
        // Branch only inside the replay prefix or within the depth
        // bound; beyond it the first option is always taken (the DFS
        // never backtracks past max_depth).
        let idx = if d < st.replay.len() {
            st.replay[d].min(options.len() - 1)
        } else {
            0
        };
        let mut branchable = if d < st.max_depth { options.len() } else { 1 };
        // State-hash pruning: if this exact global state was already
        // expanded at some decision point, its subtree is explored —
        // do not branch here again. (Only prunes *new* expansion: the
        // replayed prefix is always honoured.)
        if branchable > 1 && d >= st.replay.len() {
            if let Some(visited) = &self.visited {
                let sig = st.signature();
                let mut seen = visited.lock().unwrap_or_else(|e| e.into_inner());
                if !seen.insert(sig) {
                    branchable = 1;
                }
            }
        }
        st.decisions.push(Decision {
            chosen: idx,
            options: branchable,
        });
        let tid = options[idx];
        if let Status::TimedWait(_) = st.threads[tid].status {
            st.threads[tid].wake = Some(Wake::TimedOut);
        }
        st.threads[tid].status = Status::Running;
        st.current = Some(tid);
        let ops = st.threads[tid].ops;
        mix(&mut st.trace_hash, (tid as u64) << 32 | ops);
        true
    }

    /// Parks until `me` holds the run slot (or the run aborts).
    fn wait_for_slot<'a>(
        self: &Arc<Self>,
        mut st: std::sync::MutexGuard<'a, ExecState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, ExecState> {
        self.cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.current == Some(me) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl ExecState {
    /// Signature of the global state at the current decision point:
    /// thread statuses/positions plus every live object's content
    /// fingerprint. Called with the execution lock held; object `sig()`
    /// implementations take only their own internal locks (model
    /// primitives never call back into the scheduler from `sig()`).
    fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for t in &self.threads {
            (t.ops, std::mem::discriminant(&t.status)).hash(&mut h);
            if let Status::Blocked(o) | Status::TimedWait(o) = t.status {
                o.hash(&mut h);
            }
        }
        for obj in self.objects.iter().flatten() {
            match obj.upgrade() {
                Some(o) => o.sig().hash(&mut h),
                None => 0u64.hash(&mut h),
            }
        }
        h.finish()
    }

    fn alloc_object_id(&mut self, sig: Option<Weak<dyn StateSig>>) -> u64 {
        self.objects.push(sig);
        self.obj_clocks.push(VClock::new());
        self.objects.len() as u64 - 1
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.abort = true;
    }

    fn describe_stuck(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status != Status::Finished)
            .map(|(i, t)| format!("t{i}={:?}", t.status))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// What one complete model run produced.
pub(crate) struct RunOutcome {
    pub decisions: Vec<Decision>,
    pub trace_hash: u64,
    pub failure: Option<String>,
    pub races: usize,
}
