//! Happens-before data-race detection for model runs.
//!
//! Every model thread carries a vector clock (see `sched.rs`); the
//! model primitives propagate clocks along every synchronisation edge
//! the engine can legally order accesses with — `Mutex`/`RwLock`
//! release→acquire, channel send→recv (per message), `Condvar`
//! notify→wake (timeouts and spurious wakeups synchronise with
//! nothing), and thread spawn/join. A [`Tracked`] cell then timestamps
//! each read and write with the accessing thread's clock: two accesses
//! to the same cell race when at least one is a write, they come from
//! different threads, and neither clock dominates the other's epoch.
//!
//! Because all happens-before edges come from synchronisation
//! operations, and every synchronisation operation is a scheduling
//! point the explorer already branches over, checking the clocks on
//! whatever schedules are explored covers every ordering the
//! synchronisation structure permits — `Tracked` accesses themselves
//! do not need to be scheduling points, which keeps schedule counts
//! (and suite runtimes) unchanged with detection on.
//!
//! The production twin is `sebdb_parallel::Tracked` — a
//! `#[repr(transparent)]` zero-cost wrapper with the same role, so a
//! model of a component reads like the component itself. Usage rules
//! (what must be tracked, what is exempt) are in DESIGN.md §14.

use crate::sched::{ctx, ventry, VClock};
use std::hash::{Hash, Hasher};
use std::panic::Location;
use std::sync::{Mutex, PoisonError};

/// One recorded access: who, at what epoch, under which clock, from
/// which source line.
#[derive(Debug, Clone)]
struct Access {
    tid: usize,
    /// The accessor's own clock component at access time; a later
    /// clock `c` is ordered after this access iff `c[tid] >= epoch`.
    epoch: u64,
    site: &'static Location<'static>,
}

#[derive(Debug, Default)]
struct RaceState {
    last_write: Option<Access>,
    /// Reads since the last write, at most one (the latest) per thread.
    reads: Vec<Access>,
}

/// A shared-memory cell whose every read and write is checked against
/// the happens-before order. Interior-mutable (`set` takes `&self`) so
/// that *unsynchronized* access — the bug class under test — is
/// expressible; the underlying storage is still a real mutex, so a
/// detected race never corrupts the model itself.
///
/// Create cells inside the `explore` closure like every model object.
/// A detected race fails the run with both access sites and replays
/// like any other failure via the decision vector.
pub struct Tracked<T> {
    data: Mutex<T>,
    state: Mutex<RaceState>,
    created: &'static Location<'static>,
}

impl<T> Tracked<T> {
    /// Wraps `value`. The creation site labels the cell in race
    /// reports.
    #[track_caller]
    pub fn new(value: T) -> Tracked<T> {
        Tracked {
            data: Mutex::new(value),
            state: Mutex::new(RaceState::default()),
            created: Location::caller(),
        }
    }

    pub fn into_inner(self) -> T {
        self.data
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// A tracked read returning a copy.
    #[track_caller]
    pub fn get(&self) -> T
    where
        T: Copy,
    {
        self.record(false, Location::caller());
        *self.data.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A tracked write.
    #[track_caller]
    pub fn set(&self, value: T) {
        self.record(true, Location::caller());
        *self.data.lock().unwrap_or_else(PoisonError::into_inner) = value;
    }

    /// A tracked read through a closure (for non-`Copy` payloads). The
    /// closure must not touch model primitives or other `Tracked`
    /// cells.
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        self.record(false, Location::caller());
        f(&self.data.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// A tracked write through a closure. Same closure rules as
    /// [`Self::with`].
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.record(true, Location::caller());
        f(&mut self.data.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Checks the access against everything recorded so far and fails
    /// the run on the first unordered conflicting pair.
    fn record(&self, is_write: bool, site: &'static Location<'static>) {
        let (ex, me) = ctx();
        let clock = ex.access_clock(me);
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // A write conflicts with the previous write and with every read
        // since; a read conflicts with the previous write only.
        if let Some(w) = &st.last_write {
            if let Some(msg) = self.conflict(w, "write", me, &clock, is_write, site) {
                drop(st);
                ex.record_race();
                panic!("{msg}");
            }
        }
        if is_write {
            for r in &st.reads {
                if let Some(msg) = self.conflict(r, "read", me, &clock, true, site) {
                    drop(st);
                    ex.record_race();
                    panic!("{msg}");
                }
            }
            st.last_write = Some(Access {
                tid: me,
                epoch: ventry(&clock, me),
                site,
            });
            st.reads.clear();
        } else {
            let access = Access {
                tid: me,
                epoch: ventry(&clock, me),
                site,
            };
            match st.reads.iter_mut().find(|r| r.tid == me) {
                Some(slot) => *slot = access,
                None => st.reads.push(access),
            }
        }
    }

    /// Returns the race report if `prev` is not ordered before the
    /// current access.
    fn conflict(
        &self,
        prev: &Access,
        prev_kind: &str,
        me: usize,
        clock: &VClock,
        is_write: bool,
        site: &'static Location<'static>,
    ) -> Option<String> {
        if prev.tid == me || ventry(clock, prev.tid) >= prev.epoch {
            return None;
        }
        let kind = if is_write { "write" } else { "read" };
        Some(format!(
            "data race on Tracked cell created at {}: {prev_kind} by thread {} at {} \
             is unordered with {kind} by thread {me} at {}",
            self.created, prev.tid, prev.site, site
        ))
    }
}

/// Hashes the payload only — race bookkeeping is exploration state,
/// not model state, and must not perturb state-signature pruning.
impl<T: Hash> Hash for Tracked<T> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        self.data
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .hash(h);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Tracked<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.data
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .fmt(f)
    }
}
