//! Quickstart: spin up a SEBDB node, declare a relation, insert
//! transactions, query them back — all through the SQL-like language.
//!
//! ```sh
//! cargo run -p sebdb --example quickstart
//! ```

use sebdb::{ExecOutcome, SebdbNode};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::MacKeypair;
use sebdb_storage::BlockStore;
use sebdb_types::Value;
use std::sync::Arc;

fn main() {
    // 1. Pick a consensus engine (Kafka-style ordering here; PBFT and
    //    Tendermint plug in the same way).
    let consensus = KafkaOrderer::start(BatchConfig {
        max_txs: 100,
        timeout_ms: 50,
    });

    // 2. Start a full node with an in-memory block store.
    let node = SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(&consensus) as Arc<dyn Consensus>,
        None,
        MacKeypair::from_key([7; 32]),
    )
    .expect("node starts");

    // 3. Declare a relation. The schema travels through consensus as a
    //    special transaction, so every node in the network learns it.
    node.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .expect("create table");

    // 4. Insert transactions — each becomes a signed tuple on-chain.
    for (donor, amount) in [("Jack", 100), ("Rose", 250), ("Jack", 75)] {
        let outcome = node
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[
                    Value::str(donor),
                    Value::str("Education"),
                    Value::Int(amount),
                ],
            )
            .expect("insert");
        if let ExecOutcome::Inserted { tid, block } = outcome {
            println!("committed donation by {donor}: tid={tid} in block {block}");
        }
    }

    // 5. Query with SQL: a range query over the amount attribute.
    let result = node
        .execute(
            "SELECT donor, amount FROM donate WHERE amount BETWEEN ? AND ?",
            &[Value::Int(80), Value::Int(300)],
        )
        .expect("select")
        .rows()
        .expect("rows");
    println!("\ndonations between 80 and 300:");
    println!("{:?}", result.columns);
    for row in &result.rows {
        println!("{row:?}");
    }
    assert_eq!(result.len(), 2);

    // 6. Blockchain-native lookups still work: fetch block 0's header.
    let block = node
        .execute("GET BLOCK ID = ?", &[Value::Int(0)])
        .expect("get block")
        .rows()
        .expect("rows");
    println!("\nblock 0 header: {:?}", block.rows[0]);

    println!(
        "\nchain height {} with tip {}",
        node.ledger.height(),
        node.ledger.tip_hash()
    );
    node.ledger.verify_chain().expect("chain verifies");
    println!("chain verified ✓");

    node.shutdown();
    consensus.shutdown();
}
