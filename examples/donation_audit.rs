//! The paper's motivating donation system (Example 1 + Fig. 6): donors
//! donate to projects, the charity transfers funds to organizations,
//! organizations distribute to donees — and an auditor traces the flow
//! end-to-end with `TRACE`, on-chain joins, and an on-off-chain join
//! against the school's private donee records.
//!
//! ```sh
//! cargo run -p sebdb --example donation_audit
//! ```

use sebdb::{SebdbNode, Strategy};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::MacKeypair;
use sebdb_offchain::OffchainDb;
use sebdb_storage::BlockStore;
use sebdb_types::{Column, DataType, Value};
use std::sync::Arc;

fn main() {
    let consensus = KafkaOrderer::start(BatchConfig {
        max_txs: 50,
        timeout_ms: 30,
    });

    // The school's private (off-chain) donee records live in the local
    // RDBMS, never on the chain.
    let offdb = Arc::new(OffchainDb::new());
    offdb
        .create_table(
            "doneeinfo",
            vec![
                Column::new("donee", DataType::Str),
                Column::new("income", DataType::Decimal),
                Column::new("family_size", DataType::Int),
            ],
        )
        .unwrap();
    let conn = offdb.connect();
    for (donee, income, family) in [("tom", 800, 5), ("ann", 450, 3), ("bob", 1200, 2)] {
        conn.insert(
            "doneeinfo",
            vec![
                Value::str(donee),
                Value::decimal(income),
                Value::Int(family),
            ],
        )
        .unwrap();
    }

    let node = SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(&consensus) as Arc<dyn Consensus>,
        Some(conn),
        MacKeypair::from_key([42; 32]),
    )
    .unwrap();

    // The three on-chain relations of Fig. 6.
    node.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    node.execute(
        "CREATE transfer (project string, donor string, organization string, amount decimal)",
        &[],
    )
    .unwrap();
    node.execute("CREATE distribute (project string, donor string, organization string, donee string, amount decimal)", &[]).unwrap();

    // Example 1's events: Jack donates, the charity transfers, School1
    // distributes.
    node.execute(
        "INSERT INTO donate VALUES (?, ?, ?)",
        &[Value::str("Jack"), Value::str("Education"), Value::Int(100)],
    )
    .unwrap();
    node.execute(
        "INSERT INTO transfer VALUES (?, ?, ?, ?)",
        &[
            Value::str("Education"),
            Value::str("Jack"),
            Value::str("School1"),
            Value::Int(1000),
        ],
    )
    .unwrap();
    for (donee, amount) in [("tom", 50), ("ann", 30)] {
        node.execute(
            "INSERT INTO distribute VALUES (?, ?, ?, ?, ?)",
            &[
                Value::str("Education"),
                Value::str("Jack"),
                Value::str("School1"),
                Value::str(donee),
                Value::Int(amount),
            ],
        )
        .unwrap();
    }

    // Audit 1 — provenance: everything the charity (this node) ever
    // sent, via the track-trace operation.
    node.register_operator("org1", node.id());
    let trail = node
        .execute(r#"TRACE OPERATOR = "org1""#, &[])
        .unwrap()
        .rows()
        .unwrap();
    println!("org1 sent {} transactions:", trail.len());
    for row in &trail.rows {
        println!("  tid={} type={}", row[0], row[4]);
    }

    // Audit 2 — follow the money on-chain: which transfers reached
    // which distributions (Q5 shape)?
    let flow = node
        .execute(
            "SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization",
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("\ntransfer ⋈ distribute produced {} flow rows", flow.len());

    // Audit 3 — integrate private data: who actually received funds,
    // with their household context (Q6 shape)?
    let enriched = node
        .execute(
            "SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee",
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("\ndistributions enriched with donee records:");
    let donee_col = enriched
        .columns
        .iter()
        .position(|c| c == "distribute.donee")
        .unwrap();
    let income_col = enriched
        .columns
        .iter()
        .position(|c| c == "doneeinfo.income")
        .unwrap();
    for row in &enriched.rows {
        println!(
            "  donee {} (household income {})",
            row[donee_col], row[income_col]
        );
    }
    assert_eq!(enriched.len(), 2);

    // Audit 4 — the same range query under explicit physical plans
    // (the access paths the paper benchmarks).
    for strat in [Strategy::Scan, Strategy::Bitmap, Strategy::Auto] {
        let rows = node
            .execute_as(
                node.id(),
                "SELECT * FROM distribute WHERE amount BETWEEN ? AND ?",
                &[Value::Int(40), Value::Int(60)],
                strat,
            )
            .unwrap()
            .rows()
            .unwrap();
        println!("\n{strat:?}: {} distributions in [40, 60]", rows.len());
        assert_eq!(rows.len(), 1);
    }

    node.shutdown();
    consensus.shutdown();
    println!("\naudit complete ✓");
}
