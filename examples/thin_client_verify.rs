//! A thin client (a donor on a phone) verifies query results from
//! untrusted full nodes using the two-phase authenticated query
//! protocol of §VI — and catches a lying server.
//!
//! ```sh
//! cargo run -p sebdb --example thin_client_verify
//! ```

use sebdb::{
    byzantine_risk, serve_authenticated_query, serve_auxiliary_digest, SebdbNode, ThinClient,
};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::MacKeypair;
use sebdb_index::KeyPredicate;
use sebdb_storage::BlockStore;
use sebdb_types::Value;
use std::sync::Arc;

fn main() {
    let consensus = KafkaOrderer::start(BatchConfig {
        max_txs: 5,
        timeout_ms: 30,
    });
    // Three full nodes share the chain; the client trusts none of them
    // individually.
    let full = node(&consensus, 1);
    let aux1 = node(&consensus, 2);
    let aux2 = node(&consensus, 3);

    full.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    for i in 0..20 {
        full.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[
                Value::str(if i % 2 == 0 { "jack" } else { "rose" }),
                Value::str("education"),
                Value::Int(50 * i),
            ],
        )
        .unwrap();
    }
    let height = full.ledger.height();
    assert!(aux1.wait_height(height, std::time::Duration::from_secs(5)));
    assert!(aux2.wait_height(height, std::time::Duration::from_secs(5)));

    // Every node builds the authenticated index on donate.amount.
    let schema = full.schemas.get("donate").unwrap();
    for n in [&full, &aux1, &aux2] {
        n.ledger
            .create_layered_index(&schema, "amount", None)
            .unwrap();
    }

    // The client's question: all donations between 200 and 600.
    let pred = KeyPredicate::Range(Value::decimal(200), Value::decimal(600));

    // Phase 1: a randomly selected full node answers with results + VO
    // + the snapshot height.
    let response =
        serve_authenticated_query(&full.ledger, Some("donate"), "amount", &pred, None).unwrap();
    println!(
        "full node returned {} results with a {}-byte VO at height {}",
        response.transactions.len(),
        response.vo_bytes(),
        response.vo.height
    );

    // Phase 2: the client relays (query, height) to auxiliary nodes
    // and collects digests over the visited MB-tree roots.
    let h = response.vo.height;
    let d1 =
        serve_auxiliary_digest(&aux1.ledger, Some("donate"), "amount", &pred, None, h).unwrap();
    let d2 =
        serve_auxiliary_digest(&aux2.ledger, Some("donate"), "amount", &pred, None, h).unwrap();

    // The client verifies soundness + completeness.
    let client = ThinClient::new();
    client
        .verify(&pred, &response, &[d1, d2], 2)
        .expect("honest responses verify");
    println!("verification passed ✓ (2 matching auxiliary digests)");
    println!(
        "residual risk if 1/3 of nodes were Byzantine: θ = {:.4}",
        byzantine_risk(1.0 / 3.0, 2, 2, 1)
    );

    // Now the full node turns malicious and hides one result.
    let mut tampered = response.clone();
    tampered.transactions.remove(2);
    let keep = tampered.vo.per_block[0].results.len().saturating_sub(1);
    tampered.vo.per_block[0].results.remove(2.min(keep));
    match client.verify(&pred, &tampered, &[d1, d2], 2) {
        Err(e) => println!("tampered response rejected ✓ ({e})"),
        Ok(()) => panic!("tampering must be detected"),
    }

    full.shutdown();
    aux1.shutdown();
    aux2.shutdown();
    consensus.shutdown();
}

fn node(consensus: &Arc<KafkaOrderer>, key: u8) -> Arc<SebdbNode> {
    SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(consensus) as Arc<dyn Consensus>,
        None,
        MacKeypair::from_key([key; 32]),
    )
    .unwrap()
}
