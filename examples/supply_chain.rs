//! Food-ingredient traceability — one of the paper's motivating
//! application classes (§I) — running over PBFT with a Byzantine
//! replica, user-defined schemas, access-controlled channels, and an
//! SQL smart contract that records a hand-off atomically-in-order.
//!
//! ```sh
//! cargo run -p sebdb --example supply_chain
//! ```

use sebdb::{ContractRegistry, SebdbNode};
use sebdb_consensus::pbft::PbftConfig;
use sebdb_consensus::{BatchConfig, Consensus, PbftEngine};
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_storage::BlockStore;
use sebdb_types::Value;
use std::sync::Arc;

fn main() {
    // 4 PBFT replicas, one of which equivocates — the pipeline still
    // commits (f = 1).
    let consensus = PbftEngine::start(PbftConfig {
        batch: BatchConfig {
            max_txs: 10,
            timeout_ms: 40,
        },
        byzantine: vec![2],
        ..PbftConfig::default()
    });
    let node = SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(&consensus) as Arc<dyn Consensus>,
        None,
        MacKeypair::from_key([11; 32]),
    )
    .unwrap();

    // User-defined relations for the supply chain.
    node.execute(
        "CREATE harvest (farm string, batch string, crop string, kilos int)",
        &[],
    )
    .unwrap();
    node.execute(
        "CREATE shipment (batch string, carrier string, destination string)",
        &[],
    )
    .unwrap();
    node.execute(
        "CREATE sale (batch string, store string, price decimal)",
        &[],
    )
    .unwrap();

    // Channels: farms write harvests; retail writes sales; everyone in
    // the consortium can read everything plus chain metadata.
    let farm = node.id();
    let retailer = KeyId([5; 8]);
    for (channel, member) in [("farms", farm), ("retail", retailer)] {
        node.access.create_channel(channel);
        node.access.add_member(channel, member);
        node.access.assign_table(channel, "__chain__", false);
    }
    node.access.assign_table("farms", "harvest", true);
    node.access.assign_table("farms", "shipment", true);
    node.access.assign_table("farms", "sale", false);
    node.access.assign_table("retail", "sale", true);
    node.access.assign_table("retail", "harvest", false);
    node.access.assign_table("retail", "shipment", false);

    // A hand-off contract: harvest + shipment recorded together.
    let contracts = ContractRegistry::new();
    contracts
        .deploy(
            "harvest_and_ship",
            "INSERT INTO harvest VALUES (?, ?, ?, ?); \
             INSERT INTO shipment VALUES (?, ?, ?);",
        )
        .unwrap();
    contracts
        .invoke(
            &node,
            "harvest_and_ship",
            &[
                Value::str("sunny-acres"),
                Value::str("batch-7"),
                Value::str("tomatoes"),
                Value::Int(120),
                Value::str("batch-7"),
                Value::str("coolfreight"),
                Value::str("metro-market"),
            ],
        )
        .unwrap();
    println!("batch-7 harvested and shipped via contract ✓");

    // Retail records the sale (allowed in its channel)…
    node.execute_as(
        retailer,
        "INSERT INTO sale VALUES (?, ?, ?)",
        &[
            Value::str("batch-7"),
            Value::str("metro-market"),
            Value::Int(3),
        ],
        sebdb::Strategy::Auto,
    )
    .unwrap();
    // …but cannot forge harvests.
    assert!(node
        .execute_as(
            retailer,
            "INSERT INTO harvest VALUES (?, ?, ?, ?)",
            &[
                Value::str("fake-farm"),
                Value::str("batch-9"),
                Value::str("gold"),
                Value::Int(1)
            ],
            sebdb::Strategy::Auto,
        )
        .is_err());
    println!("retailer blocked from writing harvests ✓");

    // Trace batch-7 across all three relations: the consumer's
    // provenance question.
    node.register_operator("sunny-acres", farm);
    let trail = node
        .execute_as(
            farm,
            r#"TRACE OPERATOR = "sunny-acres""#,
            &[],
            sebdb::Strategy::Auto,
        )
        .unwrap()
        .rows()
        .unwrap();
    println!(
        "\nprovenance of sunny-acres' activity ({} events):",
        trail.len()
    );
    for row in &trail.rows {
        println!("  tid={} type={}", row[0], row[4]);
    }

    // Cross-relation lineage: which sales trace back to which harvest?
    let lineage = node
        .execute_as(
            farm,
            "SELECT * FROM harvest, sale ON harvest.batch = sale.batch",
            &[],
            sebdb::Strategy::Auto,
        )
        .unwrap()
        .rows()
        .unwrap();
    println!("\nharvest ⋈ sale lineage rows: {}", lineage.len());
    assert_eq!(lineage.len(), 1);

    node.ledger.verify_chain().unwrap();
    println!("\nchain verified over PBFT with a Byzantine replica ✓");
    node.shutdown();
    consensus.shutdown();
}
