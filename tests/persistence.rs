//! Durability: a disk-backed node survives restart — the manifest
//! replays block locations, the ledger rebuilds every index, schemas
//! re-apply from the chain itself, and queries keep answering.

use sebdb::{SebdbNode, Strategy};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::MacKeypair;
use sebdb_storage::{BlockStore, StoreConfig};
use sebdb_types::Value;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("sebdb-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn store(dir: &Path) -> Arc<BlockStore> {
    Arc::new(
        BlockStore::open(
            dir,
            StoreConfig {
                segment_size: 4096, // force several segments
                sync_writes: false,
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    )
}

#[test]
fn node_survives_restart_with_data_and_schemas() {
    let dir = tmpdir("restart");
    let tip_before;
    let height_before;

    // Session 1: create a table, commit rows.
    {
        let kafka = KafkaOrderer::start(BatchConfig {
            max_txs: 3,
            timeout_ms: 20,
        });
        let n = SebdbNode::start(
            store(&dir),
            Arc::clone(&kafka) as Arc<dyn Consensus>,
            None,
            MacKeypair::from_key([1; 32]),
        )
        .unwrap();
        n.execute(
            "CREATE donate (donor string, project string, amount decimal)",
            &[],
        )
        .unwrap();
        for i in 0..10 {
            n.execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[Value::str("jack"), Value::str("edu"), Value::Int(i * 10)],
            )
            .unwrap();
        }
        height_before = n.ledger.height();
        tip_before = n.ledger.tip_hash();
        n.shutdown();
        kafka.shutdown();
    }

    // Session 2: reopen the same directory with a fresh consensus
    // engine; everything must be back.
    {
        let kafka = KafkaOrderer::start(BatchConfig {
            max_txs: 3,
            timeout_ms: 20,
        });
        let n = SebdbNode::start(
            store(&dir),
            Arc::clone(&kafka) as Arc<dyn Consensus>,
            None,
            MacKeypair::from_key([1; 32]),
        )
        .unwrap();
        assert_eq!(n.ledger.height(), height_before);
        assert_eq!(n.ledger.tip_hash(), tip_before);
        n.ledger.verify_chain().unwrap();

        // Schemas are *not* in a side file — they replay from the chain.
        // The restart path in SebdbNode rebuilds indexes but schemas
        // come from blocks; re-apply them.
        for bid in 0..n.ledger.height() {
            let block = n.ledger.read_block(bid).unwrap();
            n.schemas.apply_block(&block);
        }
        assert!(n.schemas.get("donate").is_some());

        // Old data queryable.
        let rows = n
            .execute_as(
                n.id(),
                "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
                &[Value::Int(20), Value::Int(60)],
                Strategy::Scan,
            )
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 5);

        // A fresh ordering service restarts its sequence at 0; the
        // ledger must refuse to re-append a block at a stale height —
        // the chain stays intact regardless of how the consensus ack
        // races the (failing) local apply. This documents the
        // operational requirement that the ordering service be durable
        // alongside the chain.
        let _ = n.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("x"), Value::str("p"), Value::Int(1)],
        );
        assert_eq!(n.ledger.height(), height_before, "chain unchanged");
        n.ledger.verify_chain().unwrap();
        n.shutdown();
        kafka.shutdown();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracking_indexes_rebuild_identically_after_restart() {
    let dir = tmpdir("reindex");
    let sender;
    let expected;
    {
        let kafka = KafkaOrderer::start(BatchConfig {
            max_txs: 2,
            timeout_ms: 20,
        });
        let n = SebdbNode::start(
            store(&dir),
            Arc::clone(&kafka) as Arc<dyn Consensus>,
            None,
            MacKeypair::from_key([2; 32]),
        )
        .unwrap();
        sender = n.id();
        n.execute("CREATE t (v int)", &[]).unwrap();
        for i in 0..7 {
            n.execute("INSERT INTO t VALUES (?)", &[Value::Int(i)])
                .unwrap();
        }
        n.register_operator("me", sender);
        expected = n
            .execute(r#"TRACE OPERATOR = "me""#, &[])
            .unwrap()
            .rows()
            .unwrap()
            .len();
        assert_eq!(expected, 7);
        n.shutdown();
        kafka.shutdown();
    }
    {
        let kafka = KafkaOrderer::start(BatchConfig::default());
        let n = SebdbNode::start(
            store(&dir),
            Arc::clone(&kafka) as Arc<dyn Consensus>,
            None,
            MacKeypair::from_key([2; 32]),
        )
        .unwrap();
        n.register_operator("me", sender);
        let got = n
            .execute(r#"TRACE OPERATOR = "me""#, &[])
            .unwrap()
            .rows()
            .unwrap()
            .len();
        assert_eq!(got, expected, "rebuilt sen_id index answers identically");
        n.shutdown();
        kafka.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
