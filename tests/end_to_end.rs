//! End-to-end integration: multiple SEBDB nodes over one ordering
//! service, driven entirely through the SQL-like language.

use sebdb::{ExecOutcome, SebdbNode, Strategy};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::MacKeypair;
use sebdb_offchain::OffchainDb;
use sebdb_storage::BlockStore;
use sebdb_types::{Column, DataType, Value};
use std::sync::Arc;
use std::time::Duration;

fn quick_kafka() -> Arc<KafkaOrderer> {
    KafkaOrderer::start(BatchConfig {
        max_txs: 4,
        timeout_ms: 20,
    })
}

fn node(consensus: Arc<KafkaOrderer>, key: u8) -> Arc<SebdbNode> {
    SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        consensus as Arc<dyn Consensus>,
        None,
        MacKeypair::from_key([key; 32]),
    )
    .unwrap()
}

#[test]
fn create_insert_select_via_sql() {
    let kafka = quick_kafka();
    let n = node(Arc::clone(&kafka), 1);

    let out = n
        .execute(
            "CREATE donate (donor string, project string, amount decimal)",
            &[],
        )
        .unwrap();
    assert!(matches!(out, ExecOutcome::Created { ref table } if table == "donate"));

    for (donor, amount) in [("Jack", 100), ("Rose", 250), ("Jack", 50)] {
        let out = n
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[
                    Value::str(donor),
                    Value::str("Education"),
                    Value::Int(amount),
                ],
            )
            .unwrap();
        assert!(matches!(out, ExecOutcome::Inserted { .. }));
    }

    // Point query.
    let rows = n
        .execute(r#"SELECT * FROM donate WHERE donor = "Jack""#, &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 2);

    // Range query (Q4 shape).
    let rows = n
        .execute(
            "SELECT donor, amount FROM donate WHERE amount BETWEEN ? AND ?",
            &[Value::Int(60), Value::Int(300)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows.columns,
        vec!["donor".to_string(), "amount".to_string()]
    );

    // GET BLOCK (Q7 shape).
    let rows = n
        .execute("GET BLOCK ID = ?", &[Value::Int(0)])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);

    n.shutdown();
    kafka.shutdown();
}

#[test]
fn trace_via_sql_with_operator_registry() {
    let kafka = quick_kafka();
    let n = node(Arc::clone(&kafka), 2);
    n.execute(
        "CREATE transfer (project string, donor string, organization string, amount decimal)",
        &[],
    )
    .unwrap();
    n.register_operator("org1", n.id());
    for i in 0..3 {
        n.execute(
            "INSERT INTO transfer VALUES (?, ?, ?, ?)",
            &[
                Value::str("education"),
                Value::str("jack"),
                Value::str(format!("school{i}")),
                Value::Int(10 * i),
            ],
        )
        .unwrap();
    }
    let rows = n
        .execute(r#"TRACE OPERATOR = "org1""#, &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 3);

    let rows = n
        .execute(r#"TRACE OPERATOR = "org1", OPERATION = "transfer""#, &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 3);

    // Unknown operator is an error, not silence.
    assert!(n.execute(r#"TRACE OPERATOR = "nobody""#, &[]).is_err());
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn multiple_nodes_converge_and_share_schemas() {
    let kafka = quick_kafka();
    let a = node(Arc::clone(&kafka), 3);
    let b = node(Arc::clone(&kafka), 4);
    let c = node(Arc::clone(&kafka), 5);

    a.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    // Writes from two different nodes interleave through the same
    // ordering service.
    for i in 0..5 {
        a.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("a"), Value::str("p"), Value::Int(i)],
        )
        .unwrap();
        b.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("b"), Value::str("p"), Value::Int(i)],
        )
        .unwrap();
    }
    // Writers only wait for their *own* apply; level all three nodes
    // to the highest observed height before comparing.
    let height = a.ledger.height().max(b.ledger.height());
    assert!(a.wait_height(height, Duration::from_secs(5)));
    assert!(b.wait_height(height, Duration::from_secs(5)));
    assert!(c.wait_height(height, Duration::from_secs(5)));

    // All three nodes hold the same chain tip.
    assert_eq!(a.ledger.tip_hash(), b.ledger.tip_hash());
    assert_eq!(a.ledger.tip_hash(), c.ledger.tip_hash());
    a.ledger.verify_chain().unwrap();
    c.ledger.verify_chain().unwrap();

    // Node c, which never executed the CREATE, learned the schema via
    // the schema-sync transaction.
    assert!(c.schemas.get("donate").is_some());
    // And can query the shared data.
    let rows = c
        .execute(r#"SELECT * FROM donate WHERE donor = "b""#, &[])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 5);

    a.shutdown();
    b.shutdown();
    c.shutdown();
    kafka.shutdown();
}

#[test]
fn onchain_join_via_sql() {
    let kafka = quick_kafka();
    let n = node(Arc::clone(&kafka), 6);
    n.execute(
        "CREATE transfer (project string, donor string, organization string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute("CREATE distribute (project string, donor string, organization string, donee string, amount decimal)", &[]).unwrap();
    for org in ["red-cross", "unicef"] {
        n.execute(
            "INSERT INTO transfer VALUES (?, ?, ?, ?)",
            &[
                Value::str("education"),
                Value::str("jack"),
                Value::str(org),
                Value::Int(100),
            ],
        )
        .unwrap();
        n.execute(
            "INSERT INTO distribute VALUES (?, ?, ?, ?, ?)",
            &[
                Value::str("education"),
                Value::str("jack"),
                Value::str(org),
                Value::str("tom"),
                Value::Int(40),
            ],
        )
        .unwrap();
    }
    let rows = n
        .execute(
            "SELECT * FROM transfer, distribute ON transfer.organization = distribute.organization",
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 2);
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn onoff_join_via_sql() {
    let kafka = quick_kafka();
    let offdb = Arc::new(OffchainDb::new());
    offdb
        .create_table(
            "doneeinfo",
            vec![
                Column::new("donee", DataType::Str),
                Column::new("income", DataType::Decimal),
            ],
        )
        .unwrap();
    let conn = offdb.connect();
    conn.insert("doneeinfo", vec![Value::str("tom"), Value::decimal(120)])
        .unwrap();
    conn.insert("doneeinfo", vec![Value::str("ann"), Value::decimal(300)])
        .unwrap();

    let n = SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(&kafka) as Arc<dyn Consensus>,
        Some(conn),
        MacKeypair::from_key([7; 32]),
    )
    .unwrap();
    n.execute("CREATE distribute (project string, donor string, organization string, donee string, amount decimal)", &[]).unwrap();
    for donee in ["tom", "tom", "nobody"] {
        n.execute(
            "INSERT INTO distribute VALUES (?, ?, ?, ?, ?)",
            &[
                Value::str("education"),
                Value::str("jack"),
                Value::str("school1"),
                Value::str(donee),
                Value::Int(10),
            ],
        )
        .unwrap();
    }
    let rows = n
        .execute(
            "SELECT * FROM onchain.distribute, offchain.doneeinfo ON distribute.donee = doneeinfo.donee",
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 2, "two distributions to tom join his info");
    // Off-chain income column appears in the output.
    assert!(rows.columns.iter().any(|c| c.contains("income")));
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn select_with_time_window() {
    let kafka = quick_kafka();
    let n = node(Arc::clone(&kafka), 8);
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute(
        "INSERT INTO donate VALUES (?, ?, ?)",
        &[Value::str("x"), Value::str("p"), Value::Int(1)],
    )
    .unwrap();
    // A window entirely in the past excludes everything.
    let rows = n
        .execute(
            r#"SELECT * FROM donate WHERE donor = "x" WINDOW [1, 2]"#,
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(rows.is_empty());
    // A window covering now includes it.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as i64;
    let rows = n
        .execute(
            r#"SELECT * FROM donate WHERE donor = "x" WINDOW [?, ?]"#,
            &[Value::Int(now - 3_600_000), Value::Int(now + 3_600_000)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn strategies_agree_through_node_api() {
    let kafka = quick_kafka();
    let n = node(Arc::clone(&kafka), 9);
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    for i in 0..10 {
        n.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("d"), Value::str("p"), Value::Int(i * 10)],
        )
        .unwrap();
    }
    let sql = "SELECT * FROM donate WHERE amount BETWEEN ? AND ?";
    let params = [Value::Int(25), Value::Int(65)];
    let mut counts = Vec::new();
    for strat in [Strategy::Auto, Strategy::Scan, Strategy::Bitmap] {
        let rows = n
            .execute_as(n.id(), sql, &params, strat)
            .unwrap()
            .rows()
            .unwrap();
        counts.push(rows.len());
    }
    assert_eq!(counts, vec![4, 4, 4]);
    n.shutdown();
    kafka.shutdown();
}
