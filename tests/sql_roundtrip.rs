//! SQL surface: every Table II query shape through the node API, plus
//! error paths, access control, and SQL-driven smart contracts.

use sebdb::{AccessController, ContractRegistry, ExecOutcome, NodeError, Permission, SebdbNode};
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer};
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_storage::BlockStore;
use sebdb_types::Value;
use std::sync::Arc;

fn setup() -> (Arc<KafkaOrderer>, Arc<SebdbNode>) {
    let kafka = KafkaOrderer::start(BatchConfig {
        max_txs: 4,
        timeout_ms: 20,
    });
    let node = SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        Arc::clone(&kafka) as Arc<dyn Consensus>,
        None,
        MacKeypair::from_key([1; 32]),
    )
    .unwrap();
    (kafka, node)
}

#[test]
fn error_paths_are_reported() {
    let (kafka, n) = setup();
    // Unknown table.
    assert!(matches!(
        n.execute("SELECT * FROM nope WHERE x = 1", &[]),
        Err(NodeError::Sql(_))
    ));
    // Parse error.
    assert!(n.execute("SELEKT * FROM t", &[]).is_err());
    // Missing parameters.
    n.execute("CREATE t (a int)", &[]).unwrap();
    assert!(n.execute("INSERT INTO t VALUES (?)", &[]).is_err());
    // Arity mismatch.
    assert!(n.execute("INSERT INTO t VALUES (1, 2)", &[]).is_err());
    // Type mismatch.
    assert!(n
        .execute("INSERT INTO t VALUES (?)", &[Value::str("not an int")])
        .is_err());
    // Duplicate CREATE.
    assert!(n.execute("CREATE t (b int)", &[]).is_err());
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn get_block_by_tid_and_timestamp() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    let mut last_tid = 0;
    for i in 0..6 {
        if let ExecOutcome::Inserted { tid, .. } = n
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[Value::str("x"), Value::str("p"), Value::Int(i)],
            )
            .unwrap()
        {
            last_tid = tid;
        }
    }
    // By tid: finds the block containing that transaction.
    let rows = n
        .execute("GET BLOCK TID = ?", &[Value::Int(last_tid as i64)])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    // By timestamp far in the future: resolves to the last block.
    let rows = n
        .execute("GET BLOCK TIMESTAMP = ?", &[Value::Int(i64::MAX / 2)])
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn access_control_gates_statements() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();

    // Lock things down: a channel where only `member` can use donate.
    let member = KeyId([9; 8]);
    n.access.create_channel("charity");
    n.access.add_member("charity", member);
    n.access.assign_table("charity", "donate", true);
    n.access.assign_table("charity", "__chain__", false);

    // The node's own identity is now outside every channel.
    let denied = n.execute(r#"SELECT * FROM donate WHERE donor = "x""#, &[]);
    assert!(matches!(denied, Err(NodeError::Denied(_))));

    // The member can read and write.
    let ok = n.execute_as(
        member,
        r#"SELECT * FROM donate WHERE donor = "x""#,
        &[],
        sebdb::Strategy::Auto,
    );
    assert!(ok.is_ok());
    // Tracking needs the chain-level pseudo table.
    n.register_operator("org1", member);
    assert!(n
        .execute_as(
            member,
            r#"TRACE OPERATOR = "org1""#,
            &[],
            sebdb::Strategy::Auto
        )
        .is_ok());
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn standalone_access_controller_semantics() {
    let ac = AccessController::new();
    let alice = KeyId([1; 8]);
    assert!(ac.check(alice, Permission::Write, "anything").is_ok());
    ac.create_channel("c");
    assert!(ac.check(alice, Permission::Write, "anything").is_err());
}

#[test]
fn smart_contract_donation_flow() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute(
        "CREATE transfer (project string, donor string, organization string, amount decimal)",
        &[],
    )
    .unwrap();

    let contracts = ContractRegistry::new();
    // A DApp procedure: record a donation, immediately transfer it to
    // the receiving organization, then report the donor's history.
    contracts
        .deploy(
            "donate_and_transfer",
            r#"
            INSERT INTO donate VALUES (?, ?, ?);
            INSERT INTO transfer VALUES (?, ?, ?, ?);
            SELECT * FROM donate WHERE donor = ?;
            "#,
        )
        .unwrap();
    assert_eq!(contracts.names(), vec!["donate_and_transfer".to_string()]);

    let rows = contracts
        .invoke(
            &n,
            "donate_and_transfer",
            &[
                Value::str("jack"),      // donate.donor
                Value::str("education"), // donate.project
                Value::Int(100),         // donate.amount
                Value::str("education"), // transfer.project
                Value::str("jack"),      // transfer.donor
                Value::str("school1"),   // transfer.organization
                Value::Int(100),         // transfer.amount
                Value::str("jack"),      // select donor
            ],
        )
        .unwrap();
    assert_eq!(rows.len(), 1);

    // Wrong arity is rejected before anything commits.
    assert!(matches!(
        contracts.invoke(&n, "donate_and_transfer", &[Value::Int(1)]),
        Err(sebdb::ContractError::Arity { .. })
    ));
    // Unknown contract.
    assert!(matches!(
        contracts.invoke(&n, "nope", &[]),
        Err(sebdb::ContractError::Unknown(_))
    ));
    // Bad deployment script.
    assert!(contracts.deploy("broken", "FROB x").is_err());
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn projection_and_rendering() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute(
        "INSERT INTO donate VALUES (?, ?, ?)",
        &[Value::str("jack"), Value::str("edu"), Value::Int(42)],
    )
    .unwrap();
    let rows = n
        .execute(
            r#"SELECT amount, donor FROM donate WHERE project = "edu""#,
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(
        rows.columns,
        vec!["amount".to_string(), "donor".to_string()]
    );
    assert_eq!(rows.rows[0], vec![Value::decimal(42), Value::str("jack")]);
    // Unknown projected column errors.
    assert!(n
        .execute(r#"SELECT salary FROM donate WHERE project = "edu""#, &[])
        .is_err());
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn system_columns_queryable() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    let mut tid = 0;
    for i in 0..3 {
        if let ExecOutcome::Inserted { tid: t, .. } = n
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[Value::str("x"), Value::str("p"), Value::Int(i)],
            )
            .unwrap()
        {
            tid = t;
        }
    }
    // Query on the system column `tid`.
    let rows = n
        .execute(
            "SELECT * FROM donate WHERE tid = ?",
            &[Value::Int(tid as i64)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 1);
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn count_and_limit_via_node() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    for i in 0..7 {
        n.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("jack"), Value::str("edu"), Value::Int(i * 10)],
        )
        .unwrap();
    }
    // COUNT(*) with a predicate.
    let rows = n
        .execute(
            "SELECT COUNT(*) FROM donate WHERE amount BETWEEN ? AND ?",
            &[Value::Int(10), Value::Int(40)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.columns, vec!["count".to_string()]);
    assert_eq!(rows.rows, vec![vec![Value::Int(4)]]);

    // LIMIT truncates.
    let rows = n
        .execute(
            r#"SELECT donor FROM donate WHERE project = "edu" LIMIT 3"#,
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 3);

    // LIMIT larger than the result is a no-op.
    let rows = n
        .execute(
            r#"SELECT * FROM donate WHERE project = "edu" LIMIT 100"#,
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 7);

    // COUNT over a join.
    n.execute(
        "CREATE transfer (project string, donor string, organization string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute(
        "INSERT INTO transfer VALUES (?, ?, ?, ?)",
        &[
            Value::str("edu"),
            Value::str("jack"),
            Value::str("org"),
            Value::Int(1),
        ],
    )
    .unwrap();
    let rows = n
        .execute(
            "SELECT COUNT(*) FROM donate, transfer ON donate.project = transfer.project",
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.rows, vec![vec![Value::Int(7)]]);
    n.shutdown();
    kafka.shutdown();
}

#[test]
fn explain_describes_without_executing() {
    let (kafka, n) = setup();
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    n.execute(
        "INSERT INTO donate VALUES (?, ?, ?)",
        &[Value::str("jack"), Value::str("edu"), Value::Int(5)],
    )
    .unwrap();
    let height = n.ledger.height();

    // EXPLAIN SELECT describes the access path.
    let rows = n
        .execute(
            "EXPLAIN SELECT COUNT(*) FROM donate WHERE amount BETWEEN ? AND ? LIMIT 1",
            &[Value::Int(0), Value::Int(10)],
        )
        .unwrap()
        .rows()
        .unwrap();
    let text: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    let joined = text.join("\n");
    assert!(joined.contains("Post"), "{joined}");
    assert!(joined.contains("Query donate"), "{joined}");
    assert!(joined.contains("bitmap"), "{joined}");

    // EXPLAIN INSERT plans but does not commit.
    let rows = n
        .execute(
            "EXPLAIN INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("x"), Value::str("p"), Value::Int(1)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(rows.rows[0][0].to_string().contains("Insert"));
    assert_eq!(n.ledger.height(), height, "EXPLAIN must not execute");

    // EXPLAIN TRACE reports the dimensions.
    n.register_operator("org1", n.id());
    let rows = n
        .execute(
            r#"EXPLAIN TRACE OPERATOR = "org1", OPERATION = "donate""#,
            &[],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert!(rows.rows[0][0].to_string().contains("two system indexes"));
    n.shutdown();
    kafka.shutdown();
}
