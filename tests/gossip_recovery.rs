//! Block propagation and data recovery over gossip (§III-B): a node
//! that was offline while blocks committed catches up by pulling the
//! sealed blocks from peers and re-verifying linkage and integrity
//! locally.

use sebdb::Ledger;
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_network::GossipCluster;
use sebdb_storage::BlockStore;
use sebdb_types::{Block, Codec, Transaction, Value};
use std::sync::Arc;

fn ledger(key: u8) -> Ledger {
    Ledger::new(
        Arc::new(BlockStore::in_memory()),
        MacKeypair::from_key([key; 32]),
    )
    .unwrap()
}

fn ordered(seq: u64) -> OrderedBlock {
    OrderedBlock {
        seq,
        timestamp_ms: (seq + 1) * 1000,
        txs: (0..3)
            .map(|i| {
                let mut t = Transaction::new(
                    seq * 1000 + i,
                    KeyId([1; 8]),
                    "donate",
                    vec![Value::Int((seq * 10 + i) as i64)],
                );
                t.tid = seq * 10 + i + 1;
                t
            })
            .collect(),
    }
}

#[test]
fn lagging_node_recovers_blocks_via_gossip() {
    // Node A processes five ordered batches; node B was down.
    let a = ledger(1);
    for seq in 0..5 {
        a.append_ordered(ordered(seq)).unwrap();
    }

    // A gossips its sealed blocks (as encoded payloads keyed by height)
    // into an 8-node cluster where B's slot starts empty.
    let mut cluster: GossipCluster<Vec<u8>> = GossipCluster::new(8, 2, 7);
    for bid in 0..5 {
        let block = a.read_block(bid).unwrap();
        cluster.seed_item(0, bid, block.to_bytes());
        cluster
            .disseminate(bid, 64)
            .expect("dissemination completes");
    }

    // B (node 5 in the cluster) rebuilds its chain from gossiped bytes,
    // verifying linkage + integrity on each append.
    let b = ledger(2);
    for bid in 0..5 {
        let bytes = cluster.get(5, bid).expect("block reached node 5");
        let block = Block::from_bytes(bytes).expect("decodes");
        b.append_block(block).expect("verifies and chains");
    }
    assert_eq!(b.height(), 5);
    assert_eq!(b.tip_hash(), a.tip_hash());
    b.verify_chain().unwrap();
}

#[test]
fn corrupted_gossip_payload_is_rejected() {
    let a = ledger(1);
    a.append_ordered(ordered(0)).unwrap();
    let mut bytes = a.read_block(0).unwrap().to_bytes();
    // Flip a byte inside the body.
    let n = bytes.len();
    bytes[n - 1] ^= 0xFF;

    let b = ledger(2);
    match Block::from_bytes(&bytes) {
        // Either the codec rejects it outright…
        Err(_) => {}
        // …or the ledger's integrity check does.
        Ok(block) => {
            assert!(b.append_block(block).is_err());
        }
    }
    assert_eq!(b.height(), 0);
}

#[test]
fn out_of_order_gossip_blocks_are_rejected_not_applied() {
    let a = ledger(1);
    for seq in 0..3 {
        a.append_ordered(ordered(seq)).unwrap();
    }
    let b = ledger(2);
    // Applying block 2 before 0/1 must fail (no gap fills).
    let block2 = (*a.read_block(2).unwrap()).clone();
    assert!(b.append_block(block2).is_err());
    // In-order recovery then succeeds.
    for bid in 0..3 {
        b.append_block((*a.read_block(bid).unwrap()).clone())
            .unwrap();
    }
    assert_eq!(b.tip_hash(), a.tip_hash());
}

#[test]
fn recovered_node_serves_identical_query_results() {
    let a = ledger(1);
    for seq in 0..4 {
        a.append_ordered(ordered(seq)).unwrap();
    }
    let b = ledger(2);
    for bid in 0..4 {
        b.append_block((*a.read_block(bid).unwrap()).clone())
            .unwrap();
    }
    // The recovered node's rebuilt indexes answer tracking identically.
    let pred = sebdb_index::KeyPredicate::Eq(Value::Bytes(KeyId([1; 8]).as_bytes().to_vec()));
    let hits_a = a
        .with_layered(None, "sen_id", |idx| {
            idx.candidate_blocks(&pred).count_ones()
        })
        .unwrap();
    let hits_b = b
        .with_layered(None, "sen_id", |idx| {
            idx.candidate_blocks(&pred).count_ones()
        })
        .unwrap();
    assert_eq!(hits_a, hits_b);
    assert_eq!(hits_a, 4);
}
