//! Transaction unforgeability (§IV-A: "Sig guarantees unforgeability
//! of transactions"): with a verifier installed, a block carrying a
//! forged or tampered transaction never chains; both signature schemes
//! (HMAC bulk mode and hash-based Lamport OTS) drive the same hook.

use sebdb::Ledger;
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sig::{KeyId, LamportKeypair, MacKeypair, Signature, Signer, Verifier};
use sebdb_storage::BlockStore;
use sebdb_types::{Transaction, Value};
use std::collections::HashMap;
use std::sync::Arc;

fn ledger() -> Ledger {
    Ledger::new(
        Arc::new(BlockStore::in_memory()),
        MacKeypair::from_key([1; 32]),
    )
    .unwrap()
}

fn signed_tx(signer: &impl Signer, tid: u64, amount: i64) -> Transaction {
    let mut tx = Transaction::new(
        tid * 10,
        signer.key_id(),
        "donate",
        vec![
            Value::str("jack"),
            Value::str("edu"),
            Value::decimal(amount),
        ],
    );
    tx.sig = signer.sign(&tx.signing_payload()).to_bytes();
    tx.tid = tid;
    tx
}

fn decode_sig(bytes: &[u8]) -> Option<Signature> {
    Signature::from_bytes(bytes)
}

#[test]
fn mac_verifier_accepts_honest_blocks_and_rejects_forgeries() {
    let alice = MacKeypair::from_key([7; 32]);
    let l = ledger();
    // The consortium's key registry.
    let mut keys: HashMap<KeyId, MacKeypair> = HashMap::new();
    keys.insert(alice.key_id(), alice.clone());
    l.set_tx_verifier(Some(Box::new(move |tx| {
        let Some(sig) = decode_sig(&tx.sig) else {
            return false;
        };
        keys.get(&tx.sender)
            .is_some_and(|k| k.verify(&tx.signing_payload(), &sig))
    })));

    // Honest block chains.
    l.append_ordered(OrderedBlock {
        seq: 0,
        timestamp_ms: 1000,
        txs: vec![signed_tx(&alice, 1, 100)],
    })
    .unwrap();
    assert_eq!(l.height(), 1);

    // Tampered content (signature no longer covers it) is rejected.
    let mut tampered = signed_tx(&alice, 2, 100);
    tampered.values[2] = Value::decimal(1_000_000);
    let err = l
        .append_ordered(OrderedBlock {
            seq: 1,
            timestamp_ms: 2000,
            txs: vec![tampered],
        })
        .unwrap_err();
    assert!(err.to_string().contains("invalid signature"), "{err}");

    // Unknown sender is rejected.
    let mallory = MacKeypair::from_key([66; 32]);
    let err = l
        .append_ordered(OrderedBlock {
            seq: 1,
            timestamp_ms: 2000,
            txs: vec![signed_tx(&mallory, 3, 5)],
        })
        .unwrap_err();
    assert!(err.to_string().contains("invalid signature"));
    assert_eq!(l.height(), 1, "nothing chained");
}

#[test]
fn lamport_signatures_verify_on_apply() {
    let alice = LamportKeypair::from_seed([9; 32]);
    let pk = alice.public_key().clone();
    let l = ledger();
    l.set_tx_verifier(Some(Box::new(move |tx| {
        let Some(sig) = decode_sig(&tx.sig) else {
            return false;
        };
        pk.verify(&tx.signing_payload(), &sig)
    })));

    l.append_ordered(OrderedBlock {
        seq: 0,
        timestamp_ms: 1000,
        txs: vec![signed_tx(&alice, 1, 42)],
    })
    .unwrap();
    assert_eq!(l.height(), 1);

    // A bit-flipped Lamport signature fails.
    let mut tx = signed_tx(&alice, 2, 43);
    tx.sig[100] ^= 0xFF;
    assert!(l
        .append_ordered(OrderedBlock {
            seq: 1,
            timestamp_ms: 2000,
            txs: vec![tx],
        })
        .is_err());
}

#[test]
fn tid_assignment_does_not_invalidate_signatures() {
    // The ordering service assigns tids after signing; the signature
    // covers the payload without tid, so reassignment must not break it.
    let alice = MacKeypair::from_key([7; 32]);
    let mut tx = signed_tx(&alice, 1, 100);
    tx.tid = 999_999; // reassigned downstream
    let sig = decode_sig(&tx.sig).unwrap();
    assert!(alice.verify(&tx.signing_payload(), &sig));
    // But the signed bytes still pin the content.
    let mut other = tx.clone();
    other.tname = "transfer".into();
    assert!(!alice.verify(&other.signing_payload(), &sig));
}
