//! Thin-client authenticated queries (§VI): the two-phase protocol,
//! adversarial full nodes, Byzantine auxiliary sampling, and the basic
//! ship-all-blocks comparison path.

use sebdb::ledger::Ledger;
use sebdb::{byzantine_risk, serve_authenticated_query, serve_auxiliary_digest, ThinClient};
use sebdb_consensus::OrderedBlock;
use sebdb_crypto::sha256::sha256;
use sebdb_crypto::sig::{KeyId, MacKeypair};
use sebdb_index::KeyPredicate;
use sebdb_storage::BlockStore;
use sebdb_types::{Column, DataType, TableSchema, Transaction, Value};
use std::sync::Arc;

const ORG1: KeyId = KeyId([0xA1; 8]);

fn donate_schema() -> TableSchema {
    TableSchema::new(
        "donate",
        vec![
            Column::new("donor", DataType::Str),
            Column::new("project", DataType::Str),
            Column::new("amount", DataType::Decimal),
        ],
    )
}

/// A ledger with `blocks` blocks of donate transactions; amounts are
/// `100 * (global index)`; every third transaction is sent by org1.
fn populated_ledger(blocks: u64, per_block: usize) -> Ledger {
    let ledger = Ledger::new(
        Arc::new(BlockStore::in_memory()),
        MacKeypair::from_key([1; 32]),
    )
    .unwrap();
    let mut tid = 1u64;
    for b in 0..blocks {
        let txs: Vec<Transaction> = (0..per_block)
            .map(|i| {
                let n = (b as usize * per_block + i) as i64;
                let sender = if n % 3 == 0 { ORG1 } else { KeyId([2; 8]) };
                let mut t = Transaction::new(
                    b * 1000 + i as u64,
                    sender,
                    "donate",
                    vec![
                        Value::str("jack"),
                        Value::str("education"),
                        Value::decimal(100 * n),
                    ],
                );
                t.tid = tid;
                tid += 1;
                t
            })
            .collect();
        ledger
            .append_ordered(OrderedBlock {
                seq: b,
                timestamp_ms: (b + 1) * 1000,
                txs,
            })
            .unwrap();
    }
    ledger
        .create_layered_index(&donate_schema(), "amount", None)
        .unwrap();
    ledger
}

fn amount_range(lo: i64, hi: i64) -> KeyPredicate {
    KeyPredicate::Range(Value::decimal(lo), Value::decimal(hi))
}

#[test]
fn honest_two_phase_protocol_verifies() {
    let full = populated_ledger(6, 10);
    let aux1 = populated_ledger(6, 10); // same deterministic content
    let aux2 = populated_ledger(6, 10);
    let pred = amount_range(1000, 2500);

    // Phase 1: the randomly chosen full node answers with results + VO.
    let response = serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    assert!(!response.transactions.is_empty());

    // Phase 2: auxiliary nodes answer at the relayed snapshot height.
    let h = response.vo.height;
    let d1 = serve_auxiliary_digest(&aux1, Some("donate"), "amount", &pred, None, h).unwrap();
    let d2 = serve_auxiliary_digest(&aux2, Some("donate"), "amount", &pred, None, h).unwrap();

    // Client: 2 identical digests suffice under 4-node PBFT (Example 4).
    let client = ThinClient::new();
    client.verify(&pred, &response, &[d1, d2], 2).unwrap();

    // All returned amounts are in range (soundness spot check).
    for tx in &response.transactions {
        let Value::Decimal(a) = tx.values[2] else {
            panic!()
        };
        assert!((1000 * 10_000..=2500 * 10_000).contains(&a));
    }
}

#[test]
fn tracking_query_authenticates_too() {
    let full = populated_ledger(5, 9);
    let pred = KeyPredicate::Eq(Value::Bytes(ORG1.as_bytes().to_vec()));
    let response = serve_authenticated_query(&full, None, "sen_id", &pred, None).unwrap();
    assert_eq!(response.transactions.len(), 15); // every 3rd of 45
    let d = serve_auxiliary_digest(&full, None, "sen_id", &pred, None, response.vo.height).unwrap();
    ThinClient::new()
        .verify(&pred, &response, &[d, d], 2)
        .unwrap();
}

#[test]
fn malicious_full_node_dropping_results_is_caught() {
    let full = populated_ledger(6, 10);
    let pred = amount_range(1000, 2500);
    let mut response =
        serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    let h = response.vo.height;
    let d = serve_auxiliary_digest(&full, Some("donate"), "amount", &pred, None, h).unwrap();

    // Drop one result transaction and its VO entry consistently.
    response.transactions.remove(0);
    let block_vo = &mut response.vo.per_block[0];
    block_vo.results.remove(0);

    assert!(ThinClient::new()
        .verify(&pred, &response, &[d, d], 2)
        .is_err());
}

#[test]
fn malicious_full_node_substituting_payload_is_caught() {
    let full = populated_ledger(6, 10);
    let pred = amount_range(1000, 2500);
    let mut response =
        serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    let h = response.vo.height;
    let d = serve_auxiliary_digest(&full, Some("donate"), "amount", &pred, None, h).unwrap();

    // Substitute a forged transaction body with an in-range amount.
    response.transactions[0].values[0] = Value::str("mallory");
    assert!(matches!(
        ThinClient::new().verify(&pred, &response, &[d, d], 2),
        Err(sebdb::ClientVerifyError::TxHashMismatch { .. })
    ));
}

#[test]
fn malicious_full_node_hiding_a_block_is_caught() {
    let full = populated_ledger(6, 10);
    let pred = amount_range(0, 1_000_000);
    let mut response =
        serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    let h = response.vo.height;
    let d = serve_auxiliary_digest(&full, Some("donate"), "amount", &pred, None, h).unwrap();
    assert!(response.vo.per_block.len() > 1);
    // Hide an entire block's worth of results (and its VO entry).
    let hidden = response.vo.per_block.remove(2);
    let keep: Vec<Transaction> = response
        .transactions
        .iter()
        .filter(|t| !hidden.results.iter().any(|e| e.tx_hash == t.hash()))
        .cloned()
        .collect();
    response.transactions = keep;
    assert!(ThinClient::new()
        .verify(&pred, &response, &[d, d], 2)
        .is_err());
}

#[test]
fn byzantine_auxiliary_minority_is_outvoted() {
    let full = populated_ledger(4, 8);
    let pred = amount_range(0, 500);
    let response = serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    let h = response.vo.height;
    let honest = serve_auxiliary_digest(&full, Some("donate"), "amount", &pred, None, h).unwrap();
    let byzantine = sha256(b"whatever I want");

    // 3 honest, 1 Byzantine: majority digest wins and verifies.
    ThinClient::new()
        .verify(&pred, &response, &[honest, byzantine, honest, honest], 2)
        .unwrap();

    // All-Byzantine sample: the agreed digest doesn't match the VO.
    assert!(ThinClient::new()
        .verify(&pred, &response, &[byzantine, byzantine], 2)
        .is_err());

    // Too few matching digests.
    assert!(matches!(
        ThinClient::new().verify(&pred, &response, &[honest], 2),
        Err(sebdb::ClientVerifyError::InsufficientDigests { .. })
    ));
}

#[test]
fn snapshot_isolation_across_heights() {
    // An auxiliary node that has advanced past the snapshot must still
    // produce the phase-1 digest, because only blocks < h are visited.
    let full = populated_ledger(4, 8);
    let ahead = populated_ledger(6, 8); // same prefix, two more blocks
    let pred = amount_range(0, 1_000_000);
    let response = serve_authenticated_query(&full, Some("donate"), "amount", &pred, None).unwrap();
    let h = response.vo.height;
    assert_eq!(h, 4);
    let d = serve_auxiliary_digest(&ahead, Some("donate"), "amount", &pred, None, h).unwrap();
    ThinClient::new()
        .verify(&pred, &response, &[d, d], 2)
        .unwrap();
}

#[test]
fn basic_approach_verifies_and_detects_tampering() {
    let ledger = populated_ledger(5, 8);
    let mut client = ThinClient::new();
    client.sync_headers(&ledger);
    let blocks: Vec<_> = (0..5)
        .map(|b| (*ledger.read_block(b).unwrap()).clone())
        .collect();

    let results = client
        .verify_blocks_basic(&blocks, |t| t.sender == ORG1)
        .expect("honest blocks verify");
    assert_eq!(results.len(), 14); // every 3rd of 40: ceil(40/3)

    // Tamper with one transaction inside a shipped block.
    let mut bad = blocks.clone();
    bad[2].transactions[0].values[2] = Value::decimal(1);
    assert!(client.verify_blocks_basic(&bad, |_| true).is_none());
}

#[test]
fn risk_bound_matches_paper_shape() {
    // More matching digests → lower risk; more than max Byzantine → 0.
    let p = 0.25;
    let risks: Vec<f64> = (1..=5).map(|m| byzantine_risk(p, 8, m, 10)).collect();
    for w in risks.windows(2) {
        assert!(w[0] >= w[1], "{risks:?}");
    }
    assert_eq!(byzantine_risk(p, 8, 4, 3), 0.0);
}

mod authenticated_join {
    use super::*;
    use sebdb::{serve_authenticated_join, verify_and_join};
    use sebdb_types::ColumnRef;

    fn org_value(tx: &Transaction) -> Option<Value> {
        tx.get(ColumnRef::App(0))
    }

    /// Two relations sharing organization keys, indexed for the ALI.
    fn join_ledger() -> Ledger {
        let ledger = Ledger::new(
            Arc::new(BlockStore::in_memory()),
            MacKeypair::from_key([5; 32]),
        )
        .unwrap();
        let mut tid = 1;
        for b in 0..4u64 {
            let mut txs = Vec::new();
            for i in 0..3 {
                let org = format!("org-{}", (b + i) % 5);
                for tname in ["transfer", "distribute"] {
                    let mut t = Transaction::new(
                        b * 1000 + i,
                        KeyId([1; 8]),
                        tname,
                        vec![Value::Str(org.clone()), Value::decimal(10)],
                    );
                    t.tid = tid;
                    tid += 1;
                    txs.push(t);
                }
            }
            ledger
                .append_ordered(OrderedBlock {
                    seq: b,
                    timestamp_ms: (b + 1) * 1000,
                    txs,
                })
                .unwrap();
        }
        let transfer = TableSchema::new(
            "transfer",
            vec![
                Column::new("organization", DataType::Str),
                Column::new("amount", DataType::Decimal),
            ],
        );
        let distribute = TableSchema::new(
            "distribute",
            vec![
                Column::new("organization", DataType::Str),
                Column::new("amount", DataType::Decimal),
            ],
        );
        ledger
            .create_layered_index(&transfer, "organization", None)
            .unwrap();
        ledger
            .create_layered_index(&distribute, "organization", None)
            .unwrap();
        ledger
    }

    fn full_range() -> KeyPredicate {
        KeyPredicate::Range(Value::str(""), Value::str("zzzz"))
    }

    #[test]
    fn authenticated_join_end_to_end() {
        let ledger = join_ledger();
        let pred = full_range();
        let resp = serve_authenticated_join(
            &ledger,
            ("transfer", "organization"),
            ("distribute", "organization"),
            &pred,
            None,
        )
        .unwrap();
        let h = resp.left.vo.height;
        let dl = serve_auxiliary_digest(&ledger, Some("transfer"), "organization", &pred, None, h)
            .unwrap();
        let dr =
            serve_auxiliary_digest(&ledger, Some("distribute"), "organization", &pred, None, h)
                .unwrap();
        let rows =
            verify_and_join(&resp, &pred, &[dl, dl], &[dr, dr], 2, org_value, org_value).unwrap();
        // Each block has 3 orgs appearing once per relation; orgs repeat
        // across blocks, so compute the oracle with a plain hash join.
        let mut by_org: std::collections::HashMap<Value, usize> = Default::default();
        for tx in &resp.right.transactions {
            *by_org.entry(org_value(tx).unwrap()).or_default() += 1;
        }
        let expected: usize = resp
            .left
            .transactions
            .iter()
            .filter_map(|t| by_org.get(&org_value(t).unwrap()))
            .sum();
        assert_eq!(rows.len(), expected);
        assert!(expected > 12, "orgs repeat across blocks: {expected}");
        // Every joined pair actually shares the key.
        for (l, r) in &rows {
            assert_eq!(org_value(l), org_value(r));
        }
    }

    #[test]
    fn authenticated_join_detects_hidden_right_rows() {
        let ledger = join_ledger();
        let pred = full_range();
        let mut resp = serve_authenticated_join(
            &ledger,
            ("transfer", "organization"),
            ("distribute", "organization"),
            &pred,
            None,
        )
        .unwrap();
        let h = resp.left.vo.height;
        let dl = serve_auxiliary_digest(&ledger, Some("transfer"), "organization", &pred, None, h)
            .unwrap();
        let dr =
            serve_auxiliary_digest(&ledger, Some("distribute"), "organization", &pred, None, h)
                .unwrap();
        // Hide one right-side transaction (and its VO entry) to shrink
        // the join: must be detected.
        resp.right.transactions.remove(0);
        resp.right.vo.per_block[0].results.remove(0);
        assert!(
            verify_and_join(&resp, &pred, &[dl, dl], &[dr, dr], 2, org_value, org_value,).is_err()
        );
    }
}
