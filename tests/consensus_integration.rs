//! SEBDB nodes over each pluggable consensus engine (§III-B): the same
//! application code runs unchanged on Kafka ordering, PBFT, and
//! Tendermint, and replicas converge.

use sebdb::{ExecOutcome, SebdbNode};
use sebdb_consensus::pbft::PbftConfig;
use sebdb_consensus::tendermint::TendermintConfig;
use sebdb_consensus::{BatchConfig, Consensus, KafkaOrderer, PbftEngine, TendermintEngine};
use sebdb_crypto::sig::MacKeypair;
use sebdb_storage::BlockStore;
use sebdb_types::Value;
use std::sync::Arc;
use std::time::Duration;

fn batch() -> BatchConfig {
    BatchConfig {
        max_txs: 4,
        timeout_ms: 30,
    }
}

fn node(consensus: Arc<dyn Consensus>, key: u8) -> Arc<SebdbNode> {
    SebdbNode::start(
        Arc::new(BlockStore::in_memory()),
        consensus,
        None,
        MacKeypair::from_key([key; 32]),
    )
    .unwrap()
}

/// Runs the same small workload on a node and checks results.
fn exercise(n: &SebdbNode) {
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    for i in 0..6 {
        let out = n
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[Value::str("jack"), Value::str("edu"), Value::Int(i * 100)],
            )
            .unwrap();
        assert!(matches!(out, ExecOutcome::Inserted { .. }));
    }
    let rows = n
        .execute(
            "SELECT * FROM donate WHERE amount BETWEEN ? AND ?",
            &[Value::Int(100), Value::Int(400)],
        )
        .unwrap()
        .rows()
        .unwrap();
    assert_eq!(rows.len(), 4);
    n.ledger.verify_chain().unwrap();
}

#[test]
fn node_over_kafka() {
    let engine = KafkaOrderer::start(batch());
    let n = node(Arc::clone(&engine) as Arc<dyn Consensus>, 1);
    exercise(&n);
    n.shutdown();
    engine.shutdown();
}

#[test]
fn node_over_pbft() {
    let engine = PbftEngine::start(PbftConfig {
        batch: batch(),
        ..PbftConfig::default()
    });
    let n = node(Arc::clone(&engine) as Arc<dyn Consensus>, 2);
    exercise(&n);
    n.shutdown();
    engine.shutdown();
}

#[test]
fn node_over_pbft_with_byzantine_backup() {
    let engine = PbftEngine::start(PbftConfig {
        batch: batch(),
        byzantine: vec![3],
        ..PbftConfig::default()
    });
    let n = node(Arc::clone(&engine) as Arc<dyn Consensus>, 3);
    exercise(&n);
    n.shutdown();
    engine.shutdown();
}

#[test]
fn node_over_tendermint() {
    let engine = TendermintEngine::start(TendermintConfig {
        batch: batch(),
        step_timeout: Duration::from_millis(100),
        ..TendermintConfig::default()
    });
    let mut n = Some(node(Arc::clone(&engine) as Arc<dyn Consensus>, 4));
    let node_ref = n.as_ref().unwrap();
    // Tendermint commits are slower; allow more time per write.
    exercise(node_ref);
    n.take().unwrap().shutdown();
    engine.shutdown();
}

#[test]
fn replicas_converge_over_pbft() {
    let engine = PbftEngine::start(PbftConfig {
        batch: batch(),
        ..PbftConfig::default()
    });
    let a = node(Arc::clone(&engine) as Arc<dyn Consensus>, 5);
    let b = node(Arc::clone(&engine) as Arc<dyn Consensus>, 6);
    a.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    for i in 0..8 {
        let who = if i % 2 == 0 { &a } else { &b };
        who.execute(
            "INSERT INTO donate VALUES (?, ?, ?)",
            &[Value::str("x"), Value::str("p"), Value::Int(i)],
        )
        .unwrap();
    }
    let h = a.ledger.height().max(b.ledger.height());
    assert!(a.wait_height(h, Duration::from_secs(10)));
    assert!(b.wait_height(h, Duration::from_secs(10)));
    assert_eq!(a.ledger.tip_hash(), b.ledger.tip_hash());
    a.ledger.verify_chain().unwrap();
    b.ledger.verify_chain().unwrap();
    a.shutdown();
    b.shutdown();
    engine.shutdown();
}

#[test]
fn write_acks_carry_tids_in_order() {
    let engine = KafkaOrderer::start(batch());
    let n = node(Arc::clone(&engine) as Arc<dyn Consensus>, 7);
    n.execute(
        "CREATE donate (donor string, project string, amount decimal)",
        &[],
    )
    .unwrap();
    let mut tids = Vec::new();
    for i in 0..5 {
        if let ExecOutcome::Inserted { tid, .. } = n
            .execute(
                "INSERT INTO donate VALUES (?, ?, ?)",
                &[Value::str("s"), Value::str("p"), Value::Int(i)],
            )
            .unwrap()
        {
            tids.push(tid);
        }
    }
    assert!(tids.windows(2).all(|w| w[0] < w[1]), "{tids:?}");
    n.shutdown();
    engine.shutdown();
}
