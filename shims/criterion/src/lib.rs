//! Offline stand-in for `criterion`: runs each benchmark for the
//! configured warm-up and measurement windows and reports mean
//! time/iteration on stdout. No statistics machinery, no HTML reports
//! — enough to drive SEBDB's benches and the figure harness offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement markers (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement: Duration::from_secs(2),
            default_warm_up: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement,
            warm_up_time: self.default_warm_up,
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` directly under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (sample_size, measurement, warm_up) = (
            self.default_sample_size,
            self.default_measurement,
            self.default_warm_up,
        );
        run_bench(id, sample_size, measurement, warm_up, f);
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_bench(
            &id.into().0,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; runs the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    // Warm-up: run single iterations until the window closes, learning
    // the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warm_start.elapsed() < warm_up_time || warm_iters == 0 {
        f(&mut b);
        warm_iters += 1;
        if warm_start.elapsed() > warm_up_time * 4 {
            break; // one iteration dwarfs the window; stop warming
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters as u32;

    // Size each sample so all samples roughly fill the measurement
    // window, with at least one iteration per sample.
    let samples = sample_size.max(1) as u32;
    let per_sample = measurement_time / samples;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut fastest = Duration::MAX;
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        if iters > 0 {
            let mean = b.elapsed / iters as u32;
            if mean < fastest {
                fastest = mean;
            }
        }
    }
    let mean = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / total_iters as u32
    };
    println!(
        "  {id:<50} time: [mean {} fastest {}] ({} samples x {} iters)",
        fmt_duration(mean),
        fmt_duration(fastest),
        samples,
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collects benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn runs_to_completion() {
        benches();
    }
}
