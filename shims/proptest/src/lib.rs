//! Offline stand-in for `proptest`: deterministic random generation of
//! the strategy combinators SEBDB's tests use. Failing cases are
//! reported with their seed but are **not shrunk** — rerun with
//! `PROPTEST_RNG_SEED` to reproduce a failure exactly.
//!
//! Supported surface: integer/float range strategies, `any::<T>()`,
//! `Just`, `prop_map`, tuples, `prop_oneof!`, `prop::sample::select`,
//! `collection::{vec, hash_set}`, regex-literal string strategies
//! (character classes and `{m,n}` repetition only), `proptest!`,
//! `prop_assert!`, and `prop_assert_eq!`.

use std::marker::PhantomData;

pub mod string;
pub mod test_runner;

pub use test_runner::TestRng;

/// Run-count configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Regex-literal string strategies (subset; see [`string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

/// Primitives usable with [`any`].
pub trait Arbitrary: Sized {
    /// Draws a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `any::<T>()` strategy object.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform values of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// `Vec` strategy with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = sample_len(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `HashSet` strategy with a target size drawn from `len`
    /// (duplicates shrink the result, as in real proptest).
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Hash sets of `element` values with target size in `len`.
    pub fn hash_set<S: Strategy>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = sample_len(&self.len, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    fn sample_len(len: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(len.start < len.end, "empty length range");
        len.start + rng.below(len.end - len.start)
    }
}

/// The `prop::` namespace.
pub mod prop {
    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed vector.
        pub struct Select<T: Clone>(Vec<T>);

        /// Uniformly selects one element of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over an empty vector");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len())].clone()
            }
        }
    }
}

/// Everything tests conventionally import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among the listed strategies (all must produce the
/// same value type). Weight prefixes are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a proptest body (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn` runs `cases` times with fresh
/// random bindings drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::from_seed(
                    __seed.wrapping_add(__case as u64),
                );
                let __info = format!(
                    "proptest case {}/{} of {} (seed {})",
                    __case + 1, __cfg.cases, stringify!($name), __seed,
                );
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(panic) = __result {
                    eprintln!("{__info} failed");
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::from_seed(1);
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::from_seed(2);
        let s = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    #[test]
    fn collections_respect_length() {
        let mut rng = TestRng::from_seed(3);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_all_params(
            a in 0u64..100,
            mut b in crate::collection::vec(any::<u8>(), 0..4),
            s in "[a-z]{1,3}",
        ) {
            prop_assert!(a < 100);
            b.push(0);
            prop_assert!(!b.is_empty());
            prop_assert!((1..=3).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
