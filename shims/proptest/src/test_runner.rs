//! Deterministic RNG for the shim: xoshiro256++ seeded per test from
//! the test's path (override with `PROPTEST_RNG_SEED`).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The generator threaded through strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Base seed for a test: `PROPTEST_RNG_SEED` when set, otherwise a
/// stable hash of the test path so every run is reproducible.
pub fn seed_for(test_path: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(seed) = s.parse() {
            return seed;
        }
    }
    // FNV-1a: stable across runs and platforms, unlike DefaultHasher.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_stable_and_distinct() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
