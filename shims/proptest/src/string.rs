//! String generation from a small regex subset.
//!
//! Supported syntax (everything SEBDB's tests use): literal
//! characters, escaped literals (`\.`), the class `\PC` (any printable
//! ASCII character), bracket classes with ranges (`[a-z0-9_.-]`,
//! `[ -~]`), and `{m,n}` repetition of the preceding atom. Anything
//! fancier panics loudly so a test never silently under-covers.

use crate::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive character ranges the atom draws from.
    ranges: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..n {
            out.push(sample_char(&atom.ranges, rng));
        }
    }
    out
}

fn sample_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges
        .iter()
        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
        .sum();
    let mut pick = rng.below(total as usize) as u32;
    for &(lo, hi) in ranges {
        let span = hi as u32 - lo as u32 + 1;
        if pick < span {
            return char::from_u32(lo as u32 + pick).expect("range stays in valid chars");
        }
        pick -= span;
    }
    unreachable!("pick < total")
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let ranges = match chars[i] {
            '[' => {
                let (ranges, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                ranges
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                i += 2;
                if c == 'P' {
                    // `\PC`: not-a-control-character; printable ASCII.
                    let cat = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("\\P needs a category in {pattern:?}"));
                    assert!(
                        cat == 'C',
                        "only \\PC is supported, got \\P{cat} in {pattern:?}"
                    );
                    i += 1;
                    vec![(' ', '~')]
                } else {
                    vec![(c, c)]
                }
            }
            '(' | ')' | '*' | '+' | '?' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional {m,n} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{}} in regex {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (m, n) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("only {{m,n}} repetition is supported in {pattern:?}"));
            i = close + 1;
            (
                m.trim().parse().expect("numeric repetition bound"),
                n.trim().parse().expect("numeric repetition bound"),
            )
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition bounds in {pattern:?}");
        atoms.push(Atom { ranges, min, max });
    }
    atoms
}

/// Parses a `[...]` class starting just after the `[`; returns the
/// ranges and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<(char, char)>, usize) {
    let mut ranges = Vec::new();
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are not supported in {pattern:?}"
    );
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // `a-z` range, unless `-` is the final literal before `]`.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            assert!(lo <= hi, "inverted class range in {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(chars.get(i) == Some(&']'), "unclosed class in {pattern:?}");
    assert!(!ranges.is_empty(), "empty class in {pattern:?}");
    (ranges, i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate("[a-z][a-z0-9_]{0,10}", &mut r);
            assert!((1..=11).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("\\PC{0,200}", &mut r);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        let s = generate("[ -~]{0,120}", &mut r);
        assert!(s.chars().all(|c| (' '..='~').contains(&c)));
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut r = rng();
        let mut saw_dash = false;
        for _ in 0..2000 {
            let s = generate("[a.-]{1,1}", &mut r);
            let c = s.chars().next().unwrap();
            assert!(c == 'a' || c == '.' || c == '-');
            saw_dash |= c == '-';
        }
        assert!(saw_dash);
    }

    #[test]
    fn literals_pass_through() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
    }
}
