//! Offline stand-in for `rand` 0.8: the subset SEBDB uses, driven by a
//! xoshiro256++ generator seeded via SplitMix64. Not cryptographic —
//! SEBDB only draws benchmark data, gossip fan-out choices, and test
//! key material from it.

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values drawable from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. The output is a type
/// parameter (as in rand 0.8) so integer literals in the range infer
/// their width from the expected result type.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// generator.
pub trait Rng: RngCore {
    /// Draws a value of `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna, 2019).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random rearrangement of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
