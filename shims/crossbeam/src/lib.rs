//! Offline stand-in for `crossbeam`: the `channel` module only, as an
//! MPMC queue built on `Mutex` + `Condvar`. Semantics follow
//! crossbeam-channel: cloneable senders *and* receivers, bounded
//! channels block producers when full, and disconnection is observed
//! once every handle on the other side is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Errors from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Creates a channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel buffering at most `cap` messages (a zero
    /// capacity behaves as capacity one; true rendezvous channels are
    /// not needed by SEBDB).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.not_empty.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Returns immediately with a message, emptiness, or
        /// disconnection.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }

        /// Non-blocking iterator: drains whatever is queued right now.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter(self)
        }
    }

    /// Non-blocking message iterator (ends when the queue is empty).
    pub struct TryIter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Blocking message iterator (ends on disconnection).
    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert_eq!(tx2.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_fires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn mpmc_fanout() {
        let (tx, rx) = unbounded::<u64>();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let a = std::thread::spawn(move || rx.iter().count());
        let b = std::thread::spawn(move || rx2.iter().count());
        assert_eq!(a.join().unwrap() + b.join().unwrap(), 100);
    }
}
