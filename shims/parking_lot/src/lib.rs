//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The subset SEBDB uses is provided: `Mutex`, `RwLock`, and `Condvar`
//! whose lock methods return guards directly (no poisoning — a
//! poisoned std lock is recovered, matching parking_lot's
//! panic-transparent behaviour). Guards are this crate's own types so
//! `Condvar` can take parking_lot's `&mut MutexGuard` wait signature
//! and so the `lock-order` feature can hook acquisition and release.
//!
//! ## `lock-order` feature
//!
//! With `--features parking_lot/lock-order`, every acquisition made
//! while the thread already holds other shim locks records a directed
//! edge `held → acquiring` in a process-global order graph. The first
//! acquisition that closes a cycle — a lock-ordering inversion, i.e. a
//! potential deadlock even if this particular run got lucky — panics
//! with the current acquisition stack *and* the recorded witness stack
//! of the conflicting edge. The feature is compiled out entirely when
//! disabled: no fields, no atomics, no thread-locals.

use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

#[cfg(feature = "lock-order")]
pub mod order;

#[cfg(feature = "lock-order")]
use order::LockToken;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    token: LockToken,
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "lock-order"), allow(dead_code))]
    lock: &'a Mutex<T>,
    /// `None` only transiently while parked inside [`Condvar::wait`].
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order")]
            token: LockToken::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        self.token.acquired("Mutex");
        MutexGuard {
            lock: self,
            inner: Some(inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lock-order")]
        self.token.acquired("Mutex");
        Some(MutexGuard {
            lock: self,
            inner: Some(inner),
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active outside wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Inside `Condvar::wait` the std guard has been surrendered and
        // the release was already recorded; nothing to do then.
        #[cfg(feature = "lock-order")]
        if self.inner.is_some() {
            self.lock.token.released();
        }
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    token: LockToken,
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-order")]
            token: LockToken::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        self.token.acquired("RwLock(read)");
        RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            lock: self,
            inner,
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "lock-order")]
        self.token.acquired("RwLock(write)");
        RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            lock: self,
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.token.released();
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.token.released();
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because its deadline
/// passed (as opposed to a notification or spurious wakeup landing
/// before the deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True iff the wait's deadline had passed when the caller woke.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified (or a spurious wakeup); the mutex is
    /// released while parked and reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard active outside wait");
        #[cfg(feature = "lock-order")]
        guard.lock.token.released();
        let woken = self
            .0
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        #[cfg(feature = "lock-order")]
        guard.lock.token.acquired("Mutex");
        guard.inner = Some(woken);
    }

    /// Blocks until notified or `timeout` elapses.
    ///
    /// Unlike `std`'s result (which reflects how the OS wait call
    /// returned), `timed_out()` here is computed from the deadline
    /// itself: it is true iff the deadline had passed at wakeup. A
    /// notification or spurious wakeup landing *before* the deadline
    /// reports `timed_out() == false` even if it raced the deadline
    /// closely, and a wakeup delivered *after* the deadline reports
    /// `timed_out() == true` — so callers re-checking their predicate
    /// get a flag consistent with wall-clock elapsed time.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let deadline = Instant::now() + timeout;
        let std_guard = guard.inner.take().expect("guard active outside wait");
        #[cfg(feature = "lock-order")]
        guard.lock.token.released();
        let (woken, _) = self
            .0
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        // Sample the clock before reacquisition bookkeeping so a slow
        // lock-order pass cannot turn a pre-deadline wakeup into a
        // reported timeout.
        let timed_out = Instant::now() >= deadline;
        #[cfg(feature = "lock-order")]
        guard.lock.token.acquired("Mutex");
        guard.inner = Some(woken);
        WaitTimeoutResult { timed_out }
    }

    /// parking_lot's name for [`Self::wait_timeout`].
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_timeout(guard, timeout)
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                true
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_one();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_timeout_reports_deadline_passage() {
        let pair = (Mutex::new(()), Condvar::new());
        let mut guard = pair.0.lock();
        let start = Instant::now();
        let res = pair.1.wait_timeout(&mut guard, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(20));
        // The guard is live again after the wait.
        drop(guard);
        assert!(pair.0.try_lock().is_some());
    }

    /// Regression for the wakeup-vs-deadline race: a notification
    /// landing before the deadline must report `timed_out() == false`,
    /// and any reported timeout must actually be past the deadline —
    /// the flag is always consistent with elapsed wall-clock time.
    #[test]
    fn wait_timeout_vs_wakeup_race_is_reported_accurately() {
        let timeout = Duration::from_millis(15);
        for round in 0..20u64 {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let notifier = {
                let pair = Arc::clone(&pair);
                // Jitter the notify around the deadline so some rounds
                // win the race and some lose it.
                let delay = Duration::from_millis(14 + (round % 3));
                std::thread::spawn(move || {
                    std::thread::sleep(delay);
                    *pair.0.lock() = true;
                    pair.1.notify_all();
                })
            };
            let (lock, cv) = &*pair;
            let mut flagged = lock.lock();
            let start = Instant::now();
            let mut timed_out = false;
            while !*flagged {
                let remaining = timeout.saturating_sub(start.elapsed());
                if remaining.is_zero() {
                    timed_out = true;
                    break;
                }
                if cv.wait_timeout(&mut flagged, remaining).timed_out() {
                    timed_out = true;
                    break;
                }
            }
            if timed_out {
                // A reported timeout is never fabricated before the
                // deadline.
                assert!(
                    start.elapsed() >= timeout,
                    "round {round}: timeout reported after only {:?}",
                    start.elapsed()
                );
            } else {
                // A reported wakeup observed the predicate.
                assert!(*flagged, "round {round}: woke without predicate");
            }
            drop(flagged);
            notifier.join().unwrap();
        }
    }
}
