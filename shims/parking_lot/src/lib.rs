//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the subset SEBDB uses is provided: `Mutex` and `RwLock` whose
//! lock methods return guards directly (no poisoning — a poisoned std
//! lock is recovered, matching parking_lot's panic-transparent
//! behaviour).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
