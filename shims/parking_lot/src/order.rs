//! Lock-acquisition-order tracking (the `lock-order` feature).
//!
//! Every shim lock carries a [`LockToken`] with a lazily-assigned
//! process-unique id. Acquiring a lock while the current thread holds
//! other shim locks records directed edges `held → acquiring` in a
//! global order graph; the first acquisition whose edge would close a
//! cycle panics with both witness stacks — the current acquisition's
//! backtrace and the recorded backtrace of the conflicting edge — so
//! CI catches lock-ordering inversions (potential deadlocks) even on
//! runs whose timing never actually deadlocks.
//!
//! The graph is per-lock-*instance*: distinct locks get distinct ids,
//! so unrelated tests in one process cannot alias each other's edges.
//! Edges accumulate for the life of the process, which is the point —
//! two code paths that each run deadlock-free in isolation still trip
//! the detector if they order the same two locks differently.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Per-lock identity: a lazily-assigned process-unique id.
#[derive(Debug, Default)]
pub struct LockToken {
    id: AtomicU64,
}

/// Ids start at 1; 0 means "not yet assigned".
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl LockToken {
    /// A fresh, unassigned token (the id is allocated on first
    /// acquisition, keeping lock construction free).
    pub fn new() -> Self {
        Self::default()
    }

    fn id(&self) -> u64 {
        let cur = self.id.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(raced) => raced,
        }
    }

    /// Records that the current thread acquired this lock: adds
    /// `held → self` edges for every lock already held and panics if
    /// any edge closes an ordering cycle.
    pub fn acquired(&self, kind: &'static str) {
        let id = self.id();
        HELD.with(|held| {
            let snapshot: Vec<u64> = held.borrow().clone();
            for &from in &snapshot {
                if from != id {
                    graph().observe_edge(from, id, kind);
                }
            }
            held.borrow_mut().push(id);
        });
    }

    /// Records that the current thread released this lock.
    pub fn released(&self) {
        let id = self.id();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards may drop out of acquisition order; remove the
            // most recent occurrence of this id.
            if let Some(pos) = held.iter().rposition(|&h| h == id) {
                held.remove(pos);
            }
        });
    }
}

thread_local! {
    /// Lock ids currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

struct Edge {
    kind: &'static str,
    /// Backtrace of the acquisition that first recorded this edge.
    witness: String,
}

#[derive(Default)]
struct OrderGraph {
    /// `from → (to → first witness)`.
    edges: HashMap<u64, HashMap<u64, Edge>>,
}

impl OrderGraph {
    /// True if `to` can already reach `from` through recorded edges
    /// (so adding `from → to` would close a cycle). Returns the path
    /// `to → … → from` when one exists.
    fn path(&self, to: u64, from: u64) -> Option<Vec<u64>> {
        let mut stack = vec![(to, vec![to])];
        let mut seen = vec![to];
        while let Some((node, path)) = stack.pop() {
            if node == from {
                return Some(path);
            }
            if let Some(next) = self.edges.get(&node) {
                for &succ in next.keys() {
                    if !seen.contains(&succ) {
                        seen.push(succ);
                        let mut p = path.clone();
                        p.push(succ);
                        stack.push((succ, p));
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static GraphCell {
    static GRAPH: OnceLock<GraphCell> = OnceLock::new();
    GRAPH.get_or_init(GraphCell::default)
}

#[derive(Default)]
struct GraphCell(Mutex<OrderGraph>);

impl GraphCell {
    fn observe_edge(&self, from: u64, to: u64, kind: &'static str) {
        let mut inversion: Option<String> = None;
        {
            let mut g = self.0.lock().unwrap_or_else(|e| e.into_inner());
            let known = g.edges.get(&from).is_some_and(|m| m.contains_key(&to));
            if known {
                return; // fast path: edge already recorded and vetted
            }
            if let Some(path) = g.path(to, from) {
                // Build the report inside the lock (it reads recorded
                // witnesses) but panic only after releasing it.
                let mut report = format!(
                    "lock-order inversion: acquiring {kind} #{to} while holding #{from}, \
                     but the reverse order #{} is already on record\n\
                     cycle: #{from} -> #{to} -> {}\n\
                     === current acquisition stack ===\n{}\n",
                    path_fmt(&path),
                    path_fmt(&path[1..]),
                    Backtrace::force_capture()
                );
                for pair in path.windows(2) {
                    if let Some(edge) = g.edges.get(&pair[0]).and_then(|m| m.get(&pair[1])) {
                        report.push_str(&format!(
                            "=== recorded witness for #{} -> #{} ({}) ===\n{}\n",
                            pair[0], pair[1], edge.kind, edge.witness
                        ));
                    }
                }
                inversion = Some(report);
            } else {
                g.edges.entry(from).or_default().insert(
                    to,
                    Edge {
                        kind,
                        witness: Backtrace::force_capture().to_string(),
                    },
                );
            }
        }
        if let Some(report) = inversion {
            panic!("{report}");
        }
    }
}

fn path_fmt(path: &[u64]) -> String {
    path.iter()
        .map(|id| format!("#{id}"))
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use crate::Mutex;

    /// The deliberately seeded inversion: locking A then B on one code
    /// path and B then A on another must be caught on the second path
    /// even though no actual deadlock occurred.
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn seeded_inversion_is_caught() {
        let a = Mutex::new(0u8);
        let b = Mutex::new(0u8);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records a -> b
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle: panic
        }
    }

    #[test]
    fn consistent_order_is_fine() {
        let a = Mutex::new(0u8);
        let b = Mutex::new(0u8);
        for _ in 0..3 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // Releasing out of acquisition order is not an inversion.
        let ga = a.lock();
        let gb = b.lock();
        drop(ga);
        drop(gb);
    }

    #[test]
    fn three_lock_cycle_is_caught() {
        let result = std::thread::spawn(|| {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let c = Mutex::new(());
            {
                let _g = a.lock();
                let _h = b.lock(); // a -> b
            }
            {
                let _g = b.lock();
                let _h = c.lock(); // b -> c
            }
            let _g = c.lock();
            let _h = a.lock(); // c -> a: cycle a -> b -> c -> a
        })
        .join();
        assert!(result.is_err(), "three-lock cycle went undetected");
    }
}
