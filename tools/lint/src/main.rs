//! Repo-wide concurrency/robustness lint, run by `ci.sh`.
//!
//! Zero dependencies by design: the rules are substring checks over
//! comment- and string-stripped source with `#[cfg(test)]` / `#[test]`
//! items masked out, which is exactly enough for the four invariants we
//! enforce and keeps the tool buildable offline in seconds.
//!
//! Rules (non-test code only):
//!
//! 1. `spawn`  — no `thread::spawn` outside `crates/parallel` and
//!    `crates/model`. Everything else goes through
//!    `sebdb_parallel::spawn_service` / `par_invoke`, so every service
//!    thread inherits naming, panic routing, and the `SEBDB_THREADS=1`
//!    sequential fallback.
//! 2. `sleep`  — no `thread::sleep` (sleep-based polling hides lost
//!    wakeups; use a Condvar). Deliberate *simulation* delays (network
//!    latency, execution cost) are allowlisted.
//! 3. `unwrap` — no `.unwrap()` / `.expect(` in `crates/core`,
//!    `crates/storage`, `crates/consensus`. Allowlisted survivors must
//!    carry an `// invariant:` comment within the six lines above.
//! 4. `clock`  — no direct `SystemTime::now` outside the node clock
//!    (`crates/consensus/src/traits.rs`), so tests can virtualize time
//!    from one place.
//! 5. `std-sync` — no `std::sync::{Mutex, RwLock, Condvar}` outside
//!    `shims/` and `crates/model`. Engine code locks through the
//!    `parking_lot` shim (and models through `sebdb_model::sync`), so
//!    the model checker's instrumented primitives — including the
//!    happens-before race detector's clock propagation — cover every
//!    lock the engine actually takes.
//!
//! The allowlist lives in `tools/lint/allowlist.txt`; each line is
//! `<rule> <path> <count>`. The file is capped at 25 entries and every
//! entry must be used — a stale entry fails the lint, so the allowlist
//! can only shrink or be consciously extended.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

// Ratcheted down as sites were burned down (25 → 2 → 0): the last two
// simulation delays now park on condvar deadlines. Raising this
// requires burning an argument into the PR, not just a bigger number.
const MAX_ALLOWLIST_ENTRIES: usize = 0;

/// Crates whose non-test code may call `thread::spawn` directly.
const SPAWN_ALLOWED_DIRS: &[&str] = &["crates/parallel/", "crates/model/"];

/// Crates under the unwrap/expect ban.
const UNWRAP_SCOPE: &[&str] = &["crates/core/", "crates/storage/", "crates/consensus/"];

/// The single sanctioned wall-clock read (the node clock, `now_ms`).
const CLOCK_FILE: &str = "crates/consensus/src/traits.rs";

/// Directories whose non-test code may use the raw `std::sync` lock
/// primitives: the shims wrap them, and the model checker builds its
/// instrumented primitives (and the race detector's internal state) on
/// them by necessity.
const STD_SYNC_ALLOWED_DIRS: &[&str] = &["shims/", "crates/model/"];

/// The banned `std::sync` lock types (`Arc`, atomics, and `OnceLock`
/// remain fine everywhere — they are not lock-discipline state the
/// model checker needs to interpose on).
const STD_SYNC_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar"];

struct Violation {
    rule: &'static str,
    path: String,
    line: usize,
    text: String,
}

#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    count: usize,
    used: usize,
}

fn main() {
    let root = workspace_root();
    let allowlist_path = root.join("tools/lint/allowlist.txt");
    let mut allowlist = match load_allowlist(&allowlist_path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sebdb-lint: {e}");
            std::process::exit(1);
        }
    };

    let mut files = Vec::new();
    for dir in ["crates", "shims"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        check_file(&rel, &source, &mut violations);
    }

    let mut failures = Vec::new();
    for v in violations {
        match allowlist
            .iter_mut()
            .find(|a| a.rule == v.rule && a.path == v.path && a.used < a.count)
        {
            Some(entry) => entry.used += 1,
            None => failures.push(v),
        }
    }
    for entry in &allowlist {
        if entry.used < entry.count {
            eprintln!(
                "sebdb-lint: stale allowlist entry `{} {} {}` — only {} site(s) remain; \
                 shrink the entry",
                entry.rule, entry.path, entry.count, entry.used
            );
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "sebdb-lint: {} files clean ({} allowlisted sites)",
            files.len(),
            allowlist.iter().map(|a| a.count).sum::<usize>()
        );
        return;
    }
    for v in &failures {
        eprintln!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.text.trim());
    }
    eprintln!(
        "sebdb-lint: {} violation(s). Fix them, or (for a justified invariant) add a \
         `<rule> <path> <count>` line to tools/lint/allowlist.txt with an \
         `// invariant:` comment at the site.",
        failures.len()
    );
    std::process::exit(1);
}

/// Resolve the workspace root: walk up from CWD to the directory that
/// holds the `[workspace]` Cargo.toml (cargo runs bins from the member
/// dir or the root depending on invocation).
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().expect("cwd");
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "allowlist line {}: expected `<rule> <path> <count>`, got `{line}`",
                i + 1
            ));
        };
        if !matches!(rule, "spawn" | "sleep" | "unwrap" | "clock" | "std-sync") {
            return Err(format!("allowlist line {}: unknown rule `{rule}`", i + 1));
        }
        let count: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", i + 1))?;
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            count,
            used: 0,
        });
    }
    if entries.len() > MAX_ALLOWLIST_ENTRIES {
        return Err(format!(
            "allowlist has {} entries; the cap is {MAX_ALLOWLIST_ENTRIES} — burn some down \
             before adding more",
            entries.len()
        ));
    }
    Ok(entries)
}

fn check_file(rel: &str, source: &str, out: &mut Vec<Violation>) {
    // Integration tests and benches are test code wholesale.
    if rel.contains("/tests/") || rel.contains("/benches/") {
        return;
    }
    let stripped = strip_comments_and_strings(source);
    let test_lines = test_line_mask(&stripped);
    let original_lines: Vec<&str> = source.lines().collect();

    for (i, line) in stripped.lines().enumerate() {
        if test_lines[i] {
            continue;
        }
        let lineno = i + 1;
        let shown = original_lines.get(i).copied().unwrap_or(line);
        if line.contains("thread::spawn") && !SPAWN_ALLOWED_DIRS.iter().any(|d| rel.starts_with(d))
        {
            out.push(Violation {
                rule: "spawn",
                path: rel.to_string(),
                line: lineno,
                text: format!("direct thread::spawn (use sebdb_parallel): {shown}"),
            });
        }
        if line.contains("thread::sleep") {
            out.push(Violation {
                rule: "sleep",
                path: rel.to_string(),
                line: lineno,
                text: format!("sleep-based polling (use a Condvar): {shown}"),
            });
        }
        if UNWRAP_SCOPE.iter().any(|d| rel.starts_with(d))
            && (line.contains(".unwrap()") || line.contains(".expect("))
        {
            if has_invariant_comment(&original_lines, i) {
                // Still must be allowlisted; report so uncovered sites fail.
                out.push(Violation {
                    rule: "unwrap",
                    path: rel.to_string(),
                    line: lineno,
                    text: format!("unwrap/expect in hot crate: {shown}"),
                });
            } else {
                let mut text = String::new();
                let _ = write!(
                    text,
                    "unwrap/expect without `// invariant:` comment: {shown}"
                );
                out.push(Violation {
                    rule: "unwrap-no-invariant",
                    path: rel.to_string(),
                    line: lineno,
                    text,
                });
            }
        }
        if line.contains("SystemTime::now") && rel != CLOCK_FILE {
            out.push(Violation {
                rule: "clock",
                path: rel.to_string(),
                line: lineno,
                text: format!("direct wall-clock read (route through the node clock): {shown}"),
            });
        }
        // Catches direct paths (`std::sync::Mutex<...>`) and import
        // lines naming a banned type (`use std::sync::{Arc, Mutex};`).
        // Non-import lines only match on the full path, so legal
        // `std::sync` items (Arc, OnceLock, atomics) sharing a line
        // with a shim-provided `Mutex`/`Condvar` do not trip the rule.
        let std_sync_hit = STD_SYNC_TYPES
            .iter()
            .any(|t| line.contains(&format!("std::sync::{t}")))
            || (line.trim_start().starts_with("use std::sync::")
                && STD_SYNC_TYPES.iter().any(|t| line.contains(t)));
        if std_sync_hit && !STD_SYNC_ALLOWED_DIRS.iter().any(|d| rel.starts_with(d)) {
            out.push(Violation {
                rule: "std-sync",
                path: rel.to_string(),
                line: lineno,
                text: format!("raw std::sync lock (use the parking_lot shim): {shown}"),
            });
        }
    }
}

/// True if one of the six lines above `idx` (or the line itself)
/// carries an `// invariant:` comment justifying the unwrap.
fn has_invariant_comment(original_lines: &[&str], idx: usize) -> bool {
    let lo = idx.saturating_sub(6);
    original_lines[lo..=idx.min(original_lines.len() - 1)]
        .iter()
        .any(|l| l.contains("invariant:"))
}

/// Per-line mask: true for lines inside a `#[cfg(test)]` or `#[test]`
/// item (attribute line through the item's closing brace, or its `;`
/// for brace-less items).
fn test_line_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let t = lines[i].trim_start();
        if !(t.starts_with("#[cfg(test)]") || t.starts_with("#[test]")) {
            i += 1;
            continue;
        }
        // Mask from the attribute to the end of the annotated item:
        // scan forward for the first `{` (entering the body) or a `;`
        // at depth 0 (brace-less item such as `#[cfg(test)] use ...;`).
        let start = i;
        let mut depth: i64 = 0;
        let mut entered = false;
        'scan: while i < lines.len() {
            for ch in lines[i].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !entered && depth == 0 && i > start => break 'scan,
                    _ => {}
                }
            }
            i += 1;
        }
        let end = i.min(lines.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(start) {
            *m = true;
        }
        i += 1;
    }
    mask
}

/// Replace comment and string-literal bytes with spaces, preserving the
/// line structure so line numbers survive. Handles `//`, nested
/// `/* */`, `"…"` with escapes, `r#"…"#` raw strings, char literals,
/// and leaves lifetimes (`'a`) alone.
fn strip_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')) => {
                // Possible raw string r"…" / r#"…"#.
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    // Blank the `r`, the hashes, and the opening quote.
                    out.resize(out.len() + hashes + 2, b' ');
                    i = j + 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let close = (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'));
                            if close {
                                out.resize(out.len() + hashes + 1, b' ');
                                i += hashes + 1;
                                break 'raw;
                            }
                        }
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.extend_from_slice(b"  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: '\…' or 'x' is a literal;
                // anything else (e.g. 'static) is a lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.extend_from_slice(b"  ");
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments_and_strings("a // thread::spawn\nb /* .unwrap() */ c\n");
        assert!(!s.contains("spawn"));
        assert!(!s.contains("unwrap"));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn strips_strings_but_not_lifetimes() {
        let s = strip_comments_and_strings(
            "let x: &'static str = \"thread::spawn\"; let c = 'q'; r#\"SystemTime::now\"#;",
        );
        assert!(!s.contains("spawn"));
        assert!(!s.contains("SystemTime"));
        assert!(s.contains("'static"));
    }

    #[test]
    fn masks_cfg_test_modules() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let mask = test_line_mask(&strip_comments_and_strings(src));
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn masks_braceless_cfg_test_items() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let mask = test_line_mask(&strip_comments_and_strings(src));
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn flags_each_rule() {
        let src = "fn f() {\n    std::thread::spawn(|| ());\n    std::thread::sleep(d);\n    \
                   x.unwrap();\n    std::time::SystemTime::now();\n}\n";
        let mut v = Vec::new();
        check_file("crates/core/src/x.rs", src, &mut v);
        let rules: Vec<&str> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"spawn"));
        assert!(rules.contains(&"sleep"));
        assert!(rules.contains(&"unwrap-no-invariant"));
        assert!(rules.contains(&"clock"));
    }

    #[test]
    fn unwrap_with_invariant_comment_is_allowlistable() {
        let src = "fn f() {\n    // invariant: index built above\n    x.unwrap();\n}\n";
        let mut v = Vec::new();
        check_file("crates/storage/src/x.rs", src, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn spawn_allowed_in_parallel_and_model() {
        let src = "fn f() { std::thread::spawn(|| ()); }\n";
        for dir in ["crates/parallel/src/lib.rs", "crates/model/src/thread.rs"] {
            let mut v = Vec::new();
            check_file(dir, src, &mut v);
            assert!(v.is_empty(), "{dir}: {:?}", v.len());
        }
    }

    #[test]
    fn flags_std_sync_locks_in_engine_code() {
        // Direct paths and grouped imports both trip the rule; Arc,
        // atomics, and OnceLock stay legal.
        for src in [
            "struct S { m: std::sync::Mutex<u32> }\n",
            "use std::sync::{Arc, RwLock};\n",
            "use std::sync::Condvar;\n",
        ] {
            let mut v = Vec::new();
            check_file("crates/storage/src/x.rs", src, &mut v);
            assert_eq!(v.len(), 1, "{src}");
            assert_eq!(v[0].rule, "std-sync");
        }
        let mut v = Vec::new();
        check_file(
            "crates/storage/src/x.rs",
            "use std::sync::{Arc, OnceLock};\nuse std::sync::atomic::AtomicU64;\n\
             static P: std::sync::OnceLock<(Mutex<()>, parking_lot::Condvar)> = \
             std::sync::OnceLock::new();\n",
            &mut v,
        );
        assert!(
            v.is_empty(),
            "legal std::sync items (even sharing a line with shim lock types) must pass"
        );
    }

    #[test]
    fn std_sync_allowed_in_shims_model_and_tests() {
        let src = "use std::sync::Mutex;\n";
        for path in [
            "shims/parking_lot/src/lib.rs",
            "crates/model/src/race.rs",
            "crates/storage/tests/x.rs",
        ] {
            let mut v = Vec::new();
            check_file(path, src, &mut v);
            assert!(v.is_empty(), "{path} must be exempt");
        }
        // #[cfg(test)] modules inside engine crates are masked too.
        let mut v = Vec::new();
        check_file(
            "crates/parallel/src/lib.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n",
            &mut v,
        );
        assert!(v.is_empty(), "test-masked std::sync must be exempt");
    }
}
