#!/usr/bin/env bash
# Tier-1 gate: formatting, lints (deny warnings), full test suite.
# Run locally before pushing; the GitHub workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "ci: all green"
