#!/usr/bin/env bash
# Tier-1 gate: formatting, lints (deny warnings), full test suite.
# Run locally before pushing; the GitHub workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Repo-wide concurrency/robustness lint: thread-spawn discipline,
# no sleep-polling, unwrap/expect ban in the hot crates, single
# wall-clock site, and the std-sync lock ban (engine locks must go
# through the parking_lot shim so the model checker and lock-order
# detector cover them — DESIGN §14). Allowlist:
# tools/lint/allowlist.txt.
echo "==> cargo run -q -p sebdb-lint"
cargo run -q -p sebdb-lint

echo "==> cargo test -q"
cargo test -q

# Deterministic interleaving checker: exhaustively explores schedules
# of the pipeline/mempool/cache/index/partition models with the
# happens-before race detector active on every schedule (DESIGN §14),
# and must find zero invariant violations and zero data races — while
# still *finding* the seeded negative-test bugs, including the two
# seeded races in race_model.rs.
echo "==> cargo test -q -p sebdb-model"
cargo test -q -p sebdb-model

# Second pass pinned to one worker: every parallel primitive and the
# staged applier must be observably equivalent to sequential execution.
echo "==> SEBDB_THREADS=1 cargo test -q"
SEBDB_THREADS=1 cargo test -q

# Sharded-applier equivalence at 4 workers: lanes=4 must stay
# byte-identical and query-equivalent to lanes=1 when the parallel
# primitives actually fan out (the threads=1 case is covered by the
# full-suite pass above).
echo "==> SEBDB_THREADS=4 cargo test -q -p sebdb --test pipeline_equivalence"
SEBDB_THREADS=4 cargo test -q -p sebdb --test pipeline_equivalence

# Partitioned-storage equivalence at 4 applier lanes: the relation-
# sharded disk layout under a fanned-out persist stage must stay
# byte-identical and query-equivalent to the partitions=1 lanes=1
# sequential reference.
echo "==> SEBDB_APPLIER_LANES=4 cargo test -q -p sebdb --test pipeline_equivalence"
SEBDB_APPLIER_LANES=4 cargo test -q -p sebdb --test pipeline_equivalence

# Paged-index equivalence at both worker counts: queries answered
# through on-disk index checkpoints (fence-pointer top level + bounded
# index-block cache) must stay byte-identical to the fully-resident
# reference whether the parallel primitives fan out or not.
echo "==> SEBDB_THREADS=1 cargo test -q -p sebdb --test paged_equivalence"
SEBDB_THREADS=1 cargo test -q -p sebdb --test paged_equivalence
echo "==> SEBDB_THREADS=4 cargo test -q -p sebdb --test paged_equivalence"
SEBDB_THREADS=4 cargo test -q -p sebdb --test paged_equivalence

# Third pass with the parking_lot shim's lock-order cycle detector
# compiled in: any lock-acquisition-order inversion anywhere in the
# suite panics with both witness stacks.
echo "==> cargo test -q --workspace --features parking_lot/lock-order"
cargo test -q --workspace --features parking_lot/lock-order

# Read-path bench smoke: a tiny sweep must run end to end and emit a
# well-formed JSON (schema spot-checks below). The smoke run writes to
# target/, never touching the committed BENCH_readpath.json numbers.
echo "==> SEBDB_BENCH_SMOKE=1 cargo bench -p sebdb-bench --bench read_path"
SEBDB_BENCH_SMOKE=1 cargo bench -q -p sebdb-bench --bench read_path >/dev/null
smoke=target/BENCH_readpath_smoke.json
for key in '"bench": "read_path"' '"cpus":' '"granularity"' '"cache_mode"' \
           '"partitions"' '"threads"' '"mean_ns_per_read"' '"speedup_vs_1thread"'; do
  grep -q "$key" "$smoke" || { echo "ci: $smoke missing $key"; exit 1; }
done

# Write-path bench smoke: the lanes × depth × relations sweep must run
# end to end and emit a well-formed JSON (schema spot-checks below).
echo "==> SEBDB_BENCH_SMOKE=1 cargo bench -p sebdb-bench --bench pipeline_throughput"
SEBDB_BENCH_SMOKE=1 cargo bench -q -p sebdb-bench --bench pipeline_throughput >/dev/null
smoke=target/BENCH_writepath_smoke.json
for key in '"bench": "write_path"' '"cpus":' '"lanes"' '"depth"' '"relations"' \
           '"partitions"' '"batch_txs"' '"mean_ns_per_block"' '"speedup_vs_lane1"'; do
  grep -q "$key" "$smoke" || { echo "ci: $smoke missing $key"; exit 1; }
done

# Disk-resident index bench smoke: the open-time × cache-capacity
# sweep must run end to end and emit a well-formed JSON (schema
# spot-checks below).
echo "==> SEBDB_BENCH_SMOKE=1 cargo bench -p sebdb-bench --bench index_resident"
SEBDB_BENCH_SMOKE=1 cargo bench -q -p sebdb-bench --bench index_resident >/dev/null
smoke=target/BENCH_indexresident_smoke.json
for key in '"bench": "index_resident"' '"cpus":' '"blocks"' '"checkpoint"' \
           '"cache_blocks"' '"open_ms"' '"resident_index_bytes"' \
           '"cache_resident_bytes"' '"cache_hits"' '"cache_misses"'; do
  grep -q "$key" "$smoke" || { echo "ci: $smoke missing $key"; exit 1; }
done

# Materialized-view bench smoke: the mode=rescan|view sweep must run
# end to end, emit a well-formed JSON (schema spot-checks below), and
# its built-in assertion must hold — serving the delta-maintained view
# beats re-running the trace on repeat queries, at 1 CPU.
echo "==> SEBDB_BENCH_SMOKE=1 cargo bench -p sebdb-bench --bench tracking"
SEBDB_BENCH_SMOKE=1 cargo bench -q -p sebdb-bench --bench tracking >/dev/null
smoke=target/BENCH_views_smoke.json
for key in '"bench": "views"' '"cpus":' '"blocks"' '"mode"' \
           '"repeat_query_us"' '"append_us_per_block"' '"result_rows"'; do
  grep -q "$key" "$smoke" || { echo "ci: $smoke missing $key"; exit 1; }
done

# Every committed bench JSON must record the host core count, so the
# 1-CPU caveat in ROADMAP stays machine-checkable.
for j in BENCH_*.json; do
  grep -q '"cpus":' "$j" || { echo "ci: $j missing \"cpus\""; exit 1; }
done

echo "ci: all green"
