#!/usr/bin/env bash
# Tier-1 gate: formatting, lints (deny warnings), full test suite.
# Run locally before pushing; the GitHub workflow runs the same steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

# Second pass pinned to one worker: every parallel primitive and the
# staged applier must be observably equivalent to sequential execution.
echo "==> SEBDB_THREADS=1 cargo test -q"
SEBDB_THREADS=1 cargo test -q

echo "ci: all green"
